// LiveCluster — the G-DUR engine deployed on real sockets and threads.
//
// Inherits the entire protocol wiring from core::Cluster (partitioner,
// oracle, replicas, plug-in spec) and overrides only the transport/scheduler
// seam: time is the wall clock, per-site work runs on a dedicated mailbox
// thread, and every protocol message travels as real bytes through
// net::codec over loopback TCP (live::LiveTransport).
//
// Threading model
//   * One thread per site drains that site's Mailbox; the replica and all
//     its handlers run only there (the sim's single-threaded-site invariant,
//     preserved).
//   * With shards_per_site > 1 (DESIGN.md §14), one extra thread per
//     (site, shard) drains that shard's certifier mailbox. Certification
//     verdicts are computed there — pure reads of replica state — under the
//     touched shards' mutexes acquired in ascending shard order; the store
//     mutation on the apply path runs on the site thread holding ALL of the
//     site's shard mutexes (Cluster::with_apply_exclusion). Writer-holds-all
//     vs. reader-holds-at-least-one makes every certify-visible structure
//     (store chains, version index, recency window) safe to read off-thread.
//     The verdict re-enters the site mailbox, so everything downstream of
//     cast_vote stays single-threaded.
//   * One event-loop thread moves bytes; it never touches protocol state —
//     it posts decode+dispatch tasks to the destination's mailbox.
//   * One timer-wheel thread fires run_after callbacks and emulated link
//     delays, again only posting to mailboxes.
//   * The version oracle is the one piece of engine state shared across
//     sites (per-site clock slots live in one object); it is wrapped in a
//     serializing mutex decorator at construction.
//
// Group communication: all xcast flavors (AB, AM, pairwise) are realized by
// relaying termination messages through a fixed sequencer site (site 0) over
// FIFO TCP links. That yields a total delivery order — strictly stronger
// than any of the three primitives requires — so every plug-in's ordering
// assumption holds. 2PC/Paxos decisions, votes, reads and background
// propagation go directly between sites.
//
// What the simulator guarantees that live mode does not: determinism (thread
// and network scheduling are real), analytic CPU cost accounting (real CPU
// is spent instead), and fault injection (live runs are fault-free).
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/thread_annotations.h"
#include "core/cluster.h"
#include "core/shard.h"
#include "live/live_transport.h"
#include "live/mailbox.h"
#include "live/timer_wheel.h"
#include "net/codec.h"

namespace gdur::live {

struct LiveConfig {
  /// Base deployment shape. Live mode is fault-free and in-memory:
  /// `faults`, `durable` and `client_timeout` must stay at their defaults.
  core::ClusterConfig base;
  /// Emulated one-way link delay = topology latency × this factor
  /// (0 = raw loopback). Lets live runs reproduce geo-replication spacing.
  double delay_scale = 0.0;
  /// Coalesce small protocol messages (votes, decisions, Paxos rounds,
  /// stamp propagation) per destination into kBatch frames, flushed when
  /// the sending site's mailbox runs dry or the batch hits its size cap.
  /// Per-link FIFO is preserved: a direct (unbatched) frame to a
  /// destination flushes that destination's pending batch first.
  bool coalesce = false;
  /// Multi-process deployment: when `self` != kNoSite, this process hosts
  /// only site `self` — threads, replica activity and watchdog probes are
  /// spawned for it alone, and the transport dials `peers` (one endpoint
  /// per site, boot order free) instead of building the in-process mesh.
  /// kNoSite (default) hosts every site in this process (PR 4 behavior).
  SiteId self = kNoSite;
  std::vector<SiteEndpoint> peers;
};

class LiveCluster : public core::Cluster {
 public:
  LiveCluster(const LiveConfig& cfg, core::ProtocolSpec spec);
  ~LiveCluster() override;

  /// Spawns site threads, the event loop and the timer wheel. Call once.
  /// Lifecycle lane (gdur-thread-confinement): the thread tables below are
  /// only mutated here, in stop() and in the constructor/destructor.
  GDUR_CONFINED("lifecycle") void start();
  /// Quiesces and joins everything. Idempotent; the destructor calls it.
  GDUR_CONFINED("lifecycle") void stop();

  /// Posts `fn` to site `at`'s mailbox (any thread).
  void post(SiteId at, std::function<void()> fn);

  // --- transport/scheduler seam -----------------------------------------
  [[nodiscard]] SimTime now() const override;
  void run_after(SiteId at, SimDuration delay,
                 std::function<void()> fn) override;
  void run_local(SiteId at, SimDuration service,
                 std::function<void()> fn) override;
  /// Sharded certification (DESIGN.md §14): posts the verdict computation to
  /// the lead touched shard's worker thread, which takes the touched shard
  /// mutexes in ascending order, evaluates, and posts `done` back to the
  /// site mailbox. Serial (shards_per_site == 1) runs fall through to the
  /// base implementation, which posts to the site mailbox.
  void run_certify(SiteId at, const core::TxnPtr& t, SimDuration service,
                   std::function<bool()> compute,
                   std::function<void(bool)> done) override;
  /// Live apply cost is real CPU spent inside the exclusion — no analytic
  /// lane charge.
  void run_apply(SiteId at, const core::TxnPtr& t, SimDuration cost) override;
  /// Runs `fn` holding every shard mutex of `at` (ascending), excluding all
  /// concurrent shard certifiers. No-op wrapper when unsharded.
  void with_apply_exclusion(SiteId at,
                            const std::function<void()>& fn) override;
  [[nodiscard]] bool site_down(SiteId) const override { return false; }
  void remote_read(SiteId from, SiteId target, const core::MutTxnPtr& t,
                   ObjectId x, std::function<void(bool)> cb) override;

  // --- client API: posts straight onto the coordinator's mailbox --------
  void begin(SiteId coord, std::function<void(core::MutTxnPtr)> cb) override;
  void read(SiteId coord, const core::MutTxnPtr& t, ObjectId x,
            std::function<void(bool)> cb) override;
  void write(SiteId coord, const core::MutTxnPtr& t, ObjectId x,
             std::function<void()> cb) override;
  void commit(SiteId coord, const core::MutTxnPtr& t,
              std::function<void(bool)> cb) override;

  // --- protocol messaging over the wire ---------------------------------
  void xcast_term(const core::TxnPtr& t, std::vector<SiteId> dests) override;
  void send_vote(SiteId from, SiteId to, const core::TxnPtr& t,
                 bool vote) override;
  void send_decision(SiteId from, SiteId to, const core::TxnPtr& t,
                     bool commit) override;
  void send_paxos_2a(SiteId from, SiteId acceptor, const core::TxnPtr& t,
                     SiteId participant, bool vote) override;
  void send_paxos_2b(SiteId from, SiteId to, const core::TxnPtr& t,
                     SiteId participant, bool vote, SiteId acceptor) override;
  void propagate_stamp(SiteId from, const core::TxnRecord& t,
                       const std::vector<SiteId>& dests) override;
  /// Reconfiguration control messages take the in-process path: posted to
  /// the destination site's mailbox, so handlers still run only on that
  /// site's thread. (Live runs are fault-free; membership changes are rare
  /// control traffic, not the measured data path.)
  void send_reconfig(SiteId from, SiteId to, core::ReconfigMsg m) override;

  [[nodiscard]] std::uint64_t live_messages() const {
    return transport_live_->messages_sent();
  }
  [[nodiscard]] std::uint64_t live_bytes() const {
    return transport_live_->bytes_sent();
  }
  /// Coalesced frames sent / messages carried inside them (0 with
  /// coalescing off). Site threads write, any thread reads.
  [[nodiscard]] std::uint64_t batches_sent() const {
    return batches_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t batched_msgs() const {
    return batched_msgs_.load(std::memory_order_relaxed);
  }

  /// True when this process runs site `s`'s threads (always true in the
  /// single-process mesh).
  [[nodiscard]] bool hosted(SiteId s) const {
    return self_ == kNoSite || s == self_;
  }
  /// The one site this process hosts, or kNoSite when it hosts them all.
  [[nodiscard]] SiteId self_site() const { return self_; }

 private:
  /// The fixed relay site giving all group-communication flavors a total
  /// delivery order over FIFO links.
  static constexpr SiteId kSequencer = 0;

  struct PendingRead {
    core::MutTxnPtr t;
    ObjectId obj = 0;
    std::function<void(bool)> cb;
  };

  /// Per-site dispatcher state. Touched only by the site's mailbox thread.
  struct SiteState {
    /// Termination records known here, so id-only wire messages (votes,
    /// decisions, Paxos) can be dispatched against the full record.
    std::unordered_map<TxnId, core::TxnPtr> txns;
    std::deque<TxnId> txn_fifo;  // bounded GC, mirrors Replica's caches
    /// Messages that arrived before their termination record (possible:
    /// votes travel on different links than the sequencer relay). Flushed
    /// in arrival order on delivery.
    std::unordered_map<TxnId,
                       std::vector<std::function<void(const core::TxnPtr&)>>>
        pending;
    std::unordered_map<std::uint64_t, PendingRead> reads;
    std::uint64_t read_seq = 0;
  };

  /// Per-site outbound coalescing state; touched only on that site's
  /// mailbox thread (sends happen inside mailbox tasks, the flush hook runs
  /// on the same thread at queue-dry).
  struct Batcher {
    /// dst -> pending tagged frame bodies awaiting one kBatch frame.
    std::vector<std::vector<std::vector<std::uint8_t>>> per_dst;
    std::vector<std::size_t> bytes;  // dst -> pending payload bytes
  };

  void dispatch(SiteId src, SiteId dst, std::vector<std::uint8_t> frame);
  /// Registers `t` at `dst` if unknown; returns the canonical record (the
  /// first one seen wins, so the coordinator keeps its original pointer).
  const core::TxnPtr& register_txn(SiteId dst, const core::TxnPtr& t);
  void deliver_term(SiteId dst, const core::TxnPtr& t);
  /// Runs `fn(txn)` now if dst knows `id`, else buffers it until delivery.
  void with_txn(SiteId dst, const TxnId& id,
                std::function<void(const core::TxnPtr&)> fn);
  /// Sequencer-side relay of one termination record to its destinations.
  void relay_term(const core::TxnPtr& t, const std::vector<SiteId>& dests);
  /// Direct (unbatched) send; flushes `to`'s pending batch first so the
  /// per-link FIFO contract survives coalescing.
  void send_frame(SiteId from, SiteId to, const net::codec::Writer& w);
  /// Coalescing send for small protocol messages: appends the tagged frame
  /// to the (from, to) batch (flushed at mailbox idle or at the size cap),
  /// or falls through to a direct send with coalescing off.
  void send_small(SiteId from, SiteId to, const net::codec::Writer& w);
  /// Ships one destination's pending batch (site thread only).
  void flush_batch(SiteId from, SiteId to);
  /// Ships every pending batch of `from` (the mailbox idle hook).
  void flush_batches(SiteId from);

  static constexpr std::size_t kTxnCacheCap = 200'000;

  /// (site, shard) → certifier worker mailbox / shard-slice mutex. Built in
  /// the constructor iff shard lanes are enabled; empty means serial mode.
  [[nodiscard]] Mailbox& shard_box(SiteId at, int shard) {
    return *shard_mailboxes_[std::size_t(at) *
                                 std::size_t(shards_per_site()) +
                             std::size_t(shard)];
  }
  [[nodiscard]] Mutex& shard_mutex(SiteId at, int shard) {
    return *shard_mu_[std::size_t(at) * std::size_t(shards_per_site()) +
                      std::size_t(shard)];
  }
  /// Sorted (ascending-shard) acquisition over a dynamic lock set — the one
  /// global order both certifiers and the apply exclusion use, so they can
  /// never deadlock. Dynamic sets defeat Clang TSA's static lock matching;
  /// gdur-lint's thread/shard-affinity rule checks the discipline instead.
  void lock_shards(SiteId at, core::ShardSet s) NO_THREAD_SAFETY_ANALYSIS;
  void unlock_shards(SiteId at, core::ShardSet s) NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Mailbox>> shard_mailboxes_;
  std::vector<std::unique_ptr<Mutex>> shard_mu_;
  // Thread tables: confined to the lifecycle lane (ctor/start/stop/dtor).
  // shard_mailboxes_ and shard_mu_ are deliberately NOT confined — they
  // are the cross-thread rendezvous, reached from every certifier lane.
  GDUR_CONFINED("lifecycle") std::vector<std::thread> threads_;
  GDUR_CONFINED("lifecycle") std::vector<std::thread> shard_threads_;
  std::vector<SiteState> dispatch_state_;
  std::vector<Batcher> batchers_;
  TimerWheel wheel_;
  std::unique_ptr<LiveTransport> transport_live_;
  std::chrono::steady_clock::time_point t0_;
  bool coalesce_ = false;
  SiteId self_ = kNoSite;
  std::atomic<std::uint64_t> batches_sent_{0};
  std::atomic<std::uint64_t> batched_msgs_{0};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace gdur::live

// Socket event loop for the live runtime.
//
// One thread poll()s every registered connection. Frames are
// length-prefixed: a 4-byte little-endian body size followed by the body
// (first body byte is the codec::MsgType tag, but the loop is agnostic to
// that). Writes from any thread append to a per-connection locked output
// buffer and wake the loop through a self-pipe; the loop flushes buffers as
// sockets become writable, so senders never block on the network.
//
// TCP gives per-connection byte ordering and no duplication, and the loop
// extracts frames in arrival order — together that is the exactly-once,
// FIFO-per-link delivery contract the protocol layer was built against.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace gdur::obs {
class StatsSlot;
}

namespace gdur::live {

class EventLoop {
 public:
  /// Called on the loop thread for every complete frame.
  using FrameHandler =
      std::function<void(int conn_id, std::vector<std::uint8_t> frame)>;

  /// Frames larger than this are treated as a protocol error and the
  /// connection is dropped (largest legitimate frame is a termination
  /// record with after-values: a few KiB).
  static constexpr std::uint32_t kMaxFrame = 1u << 24;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers an established socket; the loop takes ownership of the fd
  /// and switches it to non-blocking. Returns the connection id. Must be
  /// called before start().
  int add_connection(int fd);

  void set_frame_handler(FrameHandler h) { on_frame_ = std::move(h); }

  void start();
  /// Idempotent. Closes every connection and joins the loop thread.
  void stop();

  /// Queues one frame (length prefix added here) for `conn_id`.
  /// Thread-safe; never blocks on the socket.
  void send_frame(int conn_id, const std::vector<std::uint8_t>& body);

  [[nodiscard]] std::uint64_t frames_received() const {
    return frames_in_.load(std::memory_order_relaxed);
  }

  /// Lock-free gauges for the stall watchdog. A healthy loop wakes at least
  /// every poll timeout (100 ms), so the probe pair is (progress = wakeups,
  /// pending = unflushed output bytes): a loop thread wedged inside a frame
  /// handler freezes the wakeup counter while queued bytes pile up.
  [[nodiscard]] std::uint64_t wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pending_out_bytes() const {
    const std::uint64_t q = queued_bytes_.load(std::memory_order_relaxed);
    const std::uint64_t f = flushed_bytes_.load(std::memory_order_relaxed);
    return q > f ? q - f : 0;
  }

  /// Optional stats slot: the loop thread records Counter::kLoopWakeups per
  /// poll() return. Set before start(); not owned.
  void set_stats(obs::StatsSlot* s) { stats_ = s; }

 private:
  struct Conn {
    int fd = -1;
    bool dead = false;              // loop thread only
    std::vector<std::uint8_t> in;   // loop thread only
    std::size_t in_off = 0;         // parsed prefix of `in`
    Mutex out_mu;
    std::vector<std::uint8_t> out GUARDED_BY(out_mu);  // pending write
    std::size_t out_off GUARDED_BY(out_mu) = 0;
  };

  void loop();
  void handle_readable(Conn& c, int conn_id);
  void flush_writable(Conn& c) EXCLUDES(c.out_mu);
  void wake();

  std::vector<std::unique_ptr<Conn>> conns_;
  FrameHandler on_frame_;
  int wake_pipe_[2] = {-1, -1};
  /// Written on the loop thread, read from any (frames_received()).
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> wakeups_{0};        // loop thread writes
  std::atomic<std::uint64_t> queued_bytes_{0};   // senders (send_frame)
  std::atomic<std::uint64_t> flushed_bytes_{0};  // loop thread writes
  obs::StatsSlot* stats_ = nullptr;  // set before start(), read by the loop
  bool running_ = false;  // control thread (start/stop callers) only
  Mutex stop_mu_;
  bool stopping_ GUARDED_BY(stop_mu_) = false;
  std::thread thread_;
};

}  // namespace gdur::live

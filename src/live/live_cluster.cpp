#include "live/live_cluster.h"

#include <utility>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "net/wire.h"
#include "obs/trace.h"

namespace gdur::live {

namespace codec = net::codec;
using core::TxnPtr;
using core::TxnRecord;

namespace {

/// Serializing decorator around the version oracle. The oracle is the one
/// piece of engine state shared across site threads (per-site clock slots
/// plus internal memo caches live in a single object), so in live mode every
/// call goes through one mutex. Uncontended in the common case: each call is
/// a few vector reads/writes.
class LockedOracle final : public versioning::VersionOracle {
 public:
  LockedOracle(std::unique_ptr<versioning::VersionOracle> inner,
               const store::Partitioner& part)
      : versioning::VersionOracle(part), inner_(std::move(inner)) {}

  [[nodiscard]] versioning::VersioningKind kind() const override {
    MutexLock lock(&mu_);
    return inner_->kind();
  }

  [[nodiscard]] std::uint64_t metadata_bytes() const override {
    MutexLock lock(&mu_);
    return inner_->metadata_bytes();
  }

  void begin_snapshot(SiteId coord,
                      versioning::TxnSnapshot& snap) const override {
    MutexLock lock(&mu_);
    inner_->begin_snapshot(coord, snap);
  }

  [[nodiscard]] int choose(SiteId at, const store::ObjectChain* chain,
                           PartitionId p,
                           const versioning::TxnSnapshot& snap) const override {
    MutexLock lock(&mu_);
    return inner_->choose(at, chain, p, snap);
  }

  void note_read(const store::Version* v, PartitionId p,
                 versioning::TxnSnapshot& snap) const override {
    MutexLock lock(&mu_);
    inner_->note_read(v, p, snap);
  }

  [[nodiscard]] versioning::Stamp submit_stamp(
      SiteId coord, std::uint64_t coord_seq,
      const versioning::TxnSnapshot& snap) const override {
    MutexLock lock(&mu_);
    return inner_->submit_stamp(coord, coord_seq, snap);
  }

  std::vector<std::uint64_t> on_apply(
      SiteId at, versioning::Stamp& stamp,
      const std::vector<PartitionId>& parts_written,
      const versioning::TxnSnapshot& snap) override {
    MutexLock lock(&mu_);
    return inner_->on_apply(at, stamp, parts_written, snap);
  }

  std::uint64_t on_commit_observed(SiteId at) override {
    MutexLock lock(&mu_);
    return inner_->on_commit_observed(at);
  }

  void on_propagate(SiteId at, const versioning::Stamp& stamp) override {
    MutexLock lock(&mu_);
    inner_->on_propagate(at, stamp);
  }

  [[nodiscard]] bool visible(const store::Version& v, PartitionId p,
                             const versioning::TxnSnapshot& snap) const override {
    MutexLock lock(&mu_);
    return inner_->visible(v, p, snap);
  }

 private:
  mutable Mutex mu_;
  std::unique_ptr<versioning::VersionOracle> inner_ GUARDED_BY(mu_);
};

/// Live mode is fault-free and in-memory: strip the sim-only knobs so the
/// base class never builds a fault injector or WALs.
core::ClusterConfig live_base(core::ClusterConfig cfg) {
  cfg.durable = false;
  cfg.faults = {};
  cfg.client_timeout = 0;
  cfg.term_timeout = 0;
  return cfg;
}

obs::MsgClass class_of(codec::MsgType t) {
  switch (t) {
    case codec::MsgType::kTermDeliver:
      return obs::MsgClass::kTermination;
    case codec::MsgType::kTermSubmit:
      return obs::MsgClass::kOrdering;
    case codec::MsgType::kVote:
      return obs::MsgClass::kVote;
    case codec::MsgType::kDecision:
      return obs::MsgClass::kDecision;
    case codec::MsgType::kPaxos2a:
      return obs::MsgClass::kPaxos2a;
    case codec::MsgType::kPaxos2b:
      return obs::MsgClass::kPaxos2b;
    case codec::MsgType::kReadRequest:
      return obs::MsgClass::kRemoteRead;
    case codec::MsgType::kReadReply:
      return obs::MsgClass::kReadReply;
    case codec::MsgType::kPropagate:
      return obs::MsgClass::kPropagation;
    case codec::MsgType::kControl:
    // Batch containers trace as control; their inner frames re-enter
    // dispatch and trace under their own class. Client frames never cross
    // inter-site links (the front server owns them).
    case codec::MsgType::kBatch:
    case codec::MsgType::kClientHello:
    case codec::MsgType::kClientWelcome:
    case codec::MsgType::kClientReq:
    case codec::MsgType::kClientResp:
    case codec::MsgType::kPushback:
      return obs::MsgClass::kControl;
  }
  return obs::MsgClass::kControl;
}

/// Batch flush thresholds: a batch ships early once it carries this many
/// messages or payload bytes, whichever first; otherwise it rides until
/// the site's mailbox runs dry.
constexpr std::size_t kBatchMaxMsgs = 64;
constexpr std::size_t kBatchMaxBytes = 16 * 1024;

}  // namespace

LiveCluster::LiveCluster(const LiveConfig& cfg, core::ProtocolSpec spec)
    : core::Cluster(live_base(cfg.base), std::move(spec)) {
  // Swap in the serializing oracle before any thread exists.
  oracle_ = std::make_unique<LockedOracle>(std::move(oracle_), part_);
  t0_ = std::chrono::steady_clock::now();
  coalesce_ = cfg.coalesce;
  self_ = cfg.self;

  const int n = sites();
  dispatch_state_.resize(n);
  batchers_.resize(n);
  for (auto& b : batchers_) {
    b.per_dst.resize(std::size_t(n));
    b.bytes.assign(std::size_t(n), 0);
  }
  mailboxes_.reserve(n);
  for (int s = 0; s < n; ++s) mailboxes_.push_back(std::make_unique<Mailbox>());
  if (coalesce_) {
    for (SiteId s = 0; s < static_cast<SiteId>(n); ++s) {
      if (!hosted(s)) continue;
      mailboxes_[s]->set_idle([this, s] { flush_batches(s); });
    }
  }
  if (shard_lanes_enabled()) {
    const std::size_t lanes =
        std::size_t(n) * std::size_t(shards_per_site());
    shard_mailboxes_.reserve(lanes);
    shard_mu_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      shard_mailboxes_.push_back(std::make_unique<Mailbox>());
      shard_mu_.push_back(std::make_unique<Mutex>());
    }
  }

  auto deliver = [this](SiteId src, SiteId dst, std::vector<std::uint8_t> f) {
    post(dst, [this, src, dst, f = std::move(f)]() mutable {
      dispatch(src, dst, std::move(f));
    });
  };
  if (!cfg.peers.empty()) {
    // Multi-process mesh: real sockets to peer processes, one per site.
    transport_live_ = std::make_unique<LiveTransport>(n, cfg.self, cfg.peers,
                                                      wheel_, std::move(deliver));
  } else {
    transport_live_ =
        std::make_unique<LiveTransport>(n, wheel_, std::move(deliver));
  }
  if (cfg.delay_scale > 0) {
    const auto& topo = net_->topology();
    for (SiteId i = 0; i < static_cast<SiteId>(n); ++i)
      for (SiteId j = 0; j < static_cast<SiteId>(n); ++j) {
        if (i == j) continue;
        const auto d = static_cast<std::int64_t>(
            static_cast<double>(topo.latency(i, j)) * cfg.delay_scale);
        transport_live_->set_link_delay(i, j, std::chrono::nanoseconds(d));
      }
  }

  if (auto* p = plane()) {
    // Telemetry: each site's mailbox thread records into that site's slot;
    // the shared event-loop and timer-wheel threads share the runtime slot.
    // Live mode has concurrent writers per slot (site thread + transport
    // delivery + attendant), so force the atomic-RMW record path even if
    // the caller built the plane for a single-writer sim run.
    for (std::size_t i = 0; i < p->stats().slots(); ++i)
      p->stats().slot(i).set_single_writer(false);
    for (int s = 0; s < n; ++s)
      mailboxes_[s]->set_stats(&p->slot(static_cast<SiteId>(s)));
    // Shard certifier workers record into their site's slot (atomic RMW
    // path — single-writer was just forced off above).
    for (std::size_t i = 0; i < shard_mailboxes_.size(); ++i)
      shard_mailboxes_[i]->set_stats(
          &p->slot(static_cast<SiteId>(i / std::size_t(shards_per_site()))));
    wheel_.set_stats(&p->runtime_slot());
    transport_live_->reactor().set_stats(&p->runtime_slot());
    transport_live_->set_stats([p](SiteId src) { return &p->slot(src); });
  }
}

LiveCluster::~LiveCluster() { stop(); }

void LiveCluster::start() {
  if (started_) return;
  started_ = true;
  t0_ = std::chrono::steady_clock::now();
  wheel_.start();
  transport_live_->start();
  // Hosted-site gating: in a multi-process deployment this process spawns
  // worker threads only for the site it hosts; the other sites' mailboxes
  // exist (indices must line up) but never receive work.
  threads_.reserve(mailboxes_.size());
  for (std::size_t s = 0; s < mailboxes_.size(); ++s) {
    if (!hosted(static_cast<SiteId>(s))) continue;
    threads_.emplace_back([m = mailboxes_[s].get()] { m->run(); });
  }
  shard_threads_.reserve(shard_mailboxes_.size());
  for (std::size_t i = 0; i < shard_mailboxes_.size(); ++i) {
    if (!hosted(static_cast<SiteId>(i / std::size_t(shards_per_site()))))
      continue;
    shard_threads_.emplace_back([m = shard_mailboxes_[i].get()] { m->run(); });
  }

  if (auto* p = plane()) {
    // Stall watchdog: every work queue in the live runtime registers its
    // progress/pending probe pair. All gauges are relaxed-atomic reads, so
    // the scanning thread never blocks a site thread. stop() clears the
    // probes before tearing down what they read.
    auto& wd = p->watchdog();
    for (SiteId s = 0; s < static_cast<SiteId>(sites()); ++s) {
      if (!hosted(s)) continue;  // no thread drains it — nothing to probe
      Mailbox* m = mailboxes_[s].get();
      wd.add_probe(
          "mailbox", s, [m] { return m->executed(); },
          [m] {
            // executed first: a task finishing between the reads inflates
            // pending transiently instead of wrapping it negative.
            const std::uint64_t e = m->executed();
            const std::uint64_t q = m->posted();
            return q > e ? q - e : 0;
          });
      core::Replica* r = replicas_[s].get();
      wd.add_probe(
          "cert_queue", s, [r] { return r->queue_pops(); },
          [r] {
            const std::uint64_t e = r->queue_pops();
            const std::uint64_t q = r->queue_pushes();
            return q > e ? q - e : 0;
          });
    }
    if (!shard_mailboxes_.empty()) {
      // One probe per site aggregating its shard certifier workers: a wedged
      // shard thread (e.g. a lock-order bug) shows up as rising pending with
      // flat progress, same as any other stalled queue.
      const int S = shards_per_site();
      for (SiteId s = 0; s < static_cast<SiteId>(sites()); ++s) {
        if (!hosted(s)) continue;
        wd.add_probe(
            "shard_cert", s,
            [this, s, S] {
              std::uint64_t e = 0;
              for (int sh = 0; sh < S; ++sh) e += shard_box(s, sh).executed();
              return e;
            },
            [this, s, S] {
              // executed first (see the mailbox probe above).
              std::uint64_t e = 0;
              std::uint64_t q = 0;
              for (int sh = 0; sh < S; ++sh) e += shard_box(s, sh).executed();
              for (int sh = 0; sh < S; ++sh) q += shard_box(s, sh).posted();
              return q > e ? q - e : 0;
            });
      }
    }
    wd.add_probe(
        "timer_wheel", kNoSite, [this] { return wheel_.ticks(); },
        [this] { return wheel_.armed(); });
    front::Reactor& r = transport_live_->reactor();
    wd.add_probe(
        "event_loop", kNoSite, [&r] { return r.wakeups(); },
        [&r] { return r.pending_out_bytes(); });
  }
}

void LiveCluster::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // The watchdog outlives the cluster (it belongs to the caller's plane);
  // drop its probes before destroying the state they read.
  if (auto* p = plane()) p->watchdog().clear_probes();
  // Order matters: silence the timer and I/O threads first so nothing new
  // lands in a mailbox, then stop the site threads. Base-class teardown
  // (replicas, oracle) happens only after every thread has joined.
  wheel_.stop();
  transport_live_->stop();
  // Shard workers before site threads: a certify task posted to a stopped
  // mailbox is dropped (Mailbox contract), never half-run on a dead thread.
  for (auto& mb : shard_mailboxes_) mb->stop();
  for (auto& mb : mailboxes_) mb->stop();
  for (auto& th : shard_threads_) th.join();
  for (auto& th : threads_) th.join();
  shard_threads_.clear();
  threads_.clear();
}

void LiveCluster::post(SiteId at, std::function<void()> fn) {
  mailboxes_[at]->post(std::move(fn));
}

SimTime LiveCluster::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void LiveCluster::run_after(SiteId at, SimDuration delay,
                            std::function<void()> fn) {
  wheel_.schedule_after(std::chrono::nanoseconds(delay),
                        [this, at, fn = std::move(fn)]() mutable {
                          post(at, std::move(fn));
                        });
}

void LiveCluster::run_local(SiteId at, SimDuration /*service*/,
                            std::function<void()> fn) {
  // Real CPU is spent executing the work; the analytic charge is sim-only.
  post(at, std::move(fn));
}

void LiveCluster::lock_shards(SiteId at, core::ShardSet s) {
  s.for_each([&](int sh) { shard_mutex(at, sh).lock(); });
}

void LiveCluster::unlock_shards(SiteId at, core::ShardSet s) {
  s.for_each([&](int sh) { shard_mutex(at, sh).unlock(); });
}

void LiveCluster::run_certify(SiteId at, const core::TxnPtr& t,
                              SimDuration service,
                              std::function<bool()> compute,
                              std::function<void(bool)> done) {
  if (shard_mailboxes_.empty()) {
    if (live_certify_model_ && service > 0) {
      // Serial pipeline under the certify-service model: the wait runs on
      // the site thread, stalling the whole pipeline for its duration —
      // that IS the serial baseline the sharded cores-scaling runs compare
      // against (a single certifier processes verdicts back to back).
      post(at, [service, compute = std::move(compute),
                done = std::move(done)]() mutable {
        // gdur-lint: allow(live/blocking-call) certify-service model: the stall IS the modeled serial certifier occupancy
        std::this_thread::sleep_for(std::chrono::nanoseconds(service));
        done(compute());
      });
      return;
    }
    // Serial live runtime: the base posts the verdict computation straight
    // onto the site mailbox (via run_local) — single-threaded as before.
    core::Cluster::run_certify(at, t, service, std::move(compute),
                               std::move(done));
    return;
  }
  const core::ShardSet touched = core::touched_shards(*t, shards_per_site());
  // The task runs on the lead (lowest) touched shard's worker; transactions
  // with disjoint shard footprints land on different workers and certify
  // concurrently. `compute` only reads replica state, and every writer of
  // that state holds ALL of this site's shard mutexes (the apply exclusion),
  // so holding the touched subset suffices.
  shard_box(at, touched.first())
      .post([this, at, touched, service, compute = std::move(compute),
             done = std::move(done)]() mutable {
        if (live_certify_model_ && service > 0) {
          // Pipeline-model mode: wait out the analytic certification service
          // time before computing. Waiting shard workers overlap even on a
          // single hardware core, so cores-scaling runs measure the
          // pipeline's parallelism rather than the host's core count
          // (EXPERIMENTS.md, cores-scaling methodology).
          // gdur-lint: allow(live/blocking-call) blocks a shard worker, never the event loop or a site mailbox thread
          std::this_thread::sleep_for(std::chrono::nanoseconds(service));
        }
        lock_shards(at, touched);
        const bool v = compute();
        unlock_shards(at, touched);
        // The verdict re-enters the single-threaded replica on its own
        // mailbox; everything downstream of cast_vote stays site-threaded.
        post(at, [done = std::move(done), v] { done(v); });
      });
}

void LiveCluster::run_apply(SiteId /*at*/, const core::TxnPtr& /*t*/,
                            SimDuration /*cost*/) {
  // Real CPU was already spent installing the write-set inside the apply
  // exclusion; the analytic lane charge is sim-only.
}

void LiveCluster::with_apply_exclusion(SiteId at,
                                       const std::function<void()>& fn) {
  if (shard_mailboxes_.empty()) {
    fn();
    return;
  }
  core::ShardSet all;
  for (int sh = 0; sh < shards_per_site(); ++sh) all.insert(sh);
  lock_shards(at, all);
  fn();
  unlock_shards(at, all);
}

// --- client API --------------------------------------------------------------

void LiveCluster::begin(SiteId coord, std::function<void(core::MutTxnPtr)> cb) {
  post(coord, [this, coord, cb = std::move(cb)]() mutable {
    replicas_[coord]->exec_begin(std::move(cb));
  });
}

void LiveCluster::read(SiteId coord, const core::MutTxnPtr& t, ObjectId x,
                       std::function<void(bool)> cb) {
  post(coord, [this, coord, t, x, cb = std::move(cb)]() mutable {
    replicas_[coord]->exec_read(t, x, std::move(cb));
  });
}

void LiveCluster::write(SiteId coord, const core::MutTxnPtr& t, ObjectId x,
                        std::function<void()> cb) {
  post(coord, [this, coord, t, x, cb = std::move(cb)]() mutable {
    replicas_[coord]->exec_write(t, x, std::move(cb));
  });
}

void LiveCluster::commit(SiteId coord, const core::MutTxnPtr& t,
                         std::function<void(bool)> cb) {
  post(coord, [this, coord, t, cb = std::move(cb)]() mutable {
    replicas_[coord]->exec_commit(t, std::move(cb));
  });
}

// --- wire plumbing -----------------------------------------------------------

void LiveCluster::send_frame(SiteId from, SiteId to,
                             const codec::Writer& w) {
  // FIFO contract: anything coalesced toward `to` was logically sent before
  // this frame, so it must hit the socket first.
  if (coalesce_) flush_batch(from, to);
  transport_live_->send(from, to, w.data());
}

void LiveCluster::send_small(SiteId from, SiteId to, const codec::Writer& w) {
  if (!coalesce_) {
    send_frame(from, to, w);
    return;
  }
  // Site-thread only (all protocol sends run inside mailbox tasks of
  // `from`), so the batcher needs no lock.
  auto& b = batchers_[from];
  b.per_dst[to].push_back(w.data());
  b.bytes[to] += w.data().size();
  if (b.per_dst[to].size() >= kBatchMaxMsgs || b.bytes[to] >= kBatchMaxBytes)
    flush_batch(from, to);
}

void LiveCluster::flush_batch(SiteId from, SiteId to) {
  auto& b = batchers_[from];
  auto& q = b.per_dst[to];
  if (q.empty()) return;
  if (q.size() == 1) {
    // A lone message gains nothing from the container; ship it bare.
    transport_live_->send(from, to, q.front());
  } else {
    codec::Writer w;
    w.u8(static_cast<std::uint8_t>(codec::MsgType::kBatch));
    codec::encode_batch(w, q);
    batches_sent_.fetch_add(1, std::memory_order_relaxed);
    batched_msgs_.fetch_add(q.size(), std::memory_order_relaxed);
    transport_live_->send(from, to, w.data());
  }
  q.clear();
  b.bytes[to] = 0;
}

void LiveCluster::flush_batches(SiteId from) {
  auto& b = batchers_[from];
  for (SiteId d = 0; d < static_cast<SiteId>(b.per_dst.size()); ++d)
    flush_batch(from, d);
}

void LiveCluster::remote_read(SiteId from, SiteId target,
                              const core::MutTxnPtr& t, ObjectId x,
                              std::function<void(bool)> cb) {
  // Runs on `from`'s mailbox thread (called from exec_read).
  auto& st = dispatch_state_[from];
  const std::uint64_t req = ++st.read_seq;
  st.reads.emplace(req, PendingRead{t, x, std::move(cb)});
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kReadRequest));
  codec::encode_read_request(w, {req, from, x, t->snap});
  send_frame(from, target, w);
}

void LiveCluster::xcast_term(const TxnPtr& t, std::vector<SiteId> dests) {
  // Runs on the coordinator's mailbox thread.
  const SiteId origin = t->id.coord;
  register_txn(origin, t);
  if (spec_.ac == core::AcKind::kGroupComm) {
    // Every GC xcast flavor is realized as sequencer-relayed delivery: a
    // total order over FIFO links, strictly stronger than AB, AM or
    // pairwise ordering require.
    if (origin == kSequencer) {
      relay_term(t, dests);
    } else {
      codec::Writer w;
      w.u8(static_cast<std::uint8_t>(codec::MsgType::kTermSubmit));
      codec::encode_term_submit(w, {std::move(dests), *t}, net::wire::kPayload);
      send_frame(origin, kSequencer, w);
    }
  } else {
    // 2PC / Paxos Commit order their own decisions; fan out directly.
    codec::Writer w;
    w.u8(static_cast<std::uint8_t>(codec::MsgType::kTermDeliver));
    codec::encode_txn(w, *t, net::wire::kPayload);
    for (SiteId d : dests) {
      if (d == origin) {
        post(d, [this, d, t] { deliver_term(d, t); });
      } else {
        send_frame(origin, d, w);
      }
    }
  }
}

void LiveCluster::relay_term(const TxnPtr& t,
                             const std::vector<SiteId>& dests) {
  // Runs on the sequencer's mailbox thread; execution order here IS the
  // total delivery order.
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kTermDeliver));
  codec::encode_txn(w, *t, net::wire::kPayload);
  for (SiteId d : dests) {
    if (d == kSequencer) {
      post(d, [this, d, t] { deliver_term(d, t); });
    } else {
      send_frame(kSequencer, d, w);
    }
  }
}

void LiveCluster::send_vote(SiteId from, SiteId to, const TxnPtr& t,
                            bool vote) {
  if (vote_observer_) vote_observer_({from, to, t->id, vote});
  if (to == from) {
    post(to, [this, to, t, from, vote] { replicas_[to]->on_vote(t, from, vote); });
    return;
  }
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kVote));
  codec::encode_vote(w, {t->id, from, vote});
  send_small(from, to, w);
}

void LiveCluster::send_decision(SiteId from, SiteId to, const TxnPtr& t,
                                bool commit) {
  if (to == from) {
    post(to, [this, to, t, commit] { replicas_[to]->on_decision(t, commit); });
    return;
  }
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kDecision));
  codec::encode_decision(w, {t->id, commit});
  send_small(from, to, w);
}

void LiveCluster::send_paxos_2a(SiteId from, SiteId acceptor, const TxnPtr& t,
                                SiteId participant, bool vote) {
  if (acceptor == from) {
    post(acceptor, [this, acceptor, t, participant, vote] {
      replicas_[acceptor]->on_paxos_2a(t, participant, vote);
    });
    return;
  }
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kPaxos2a));
  codec::encode_paxos(w, {t->id, participant, vote, acceptor});
  send_small(from, acceptor, w);
}

void LiveCluster::send_paxos_2b(SiteId from, SiteId to, const TxnPtr& t,
                                SiteId participant, bool vote,
                                SiteId acceptor) {
  if (to == from) {
    post(to, [this, to, t, participant, vote, acceptor] {
      replicas_[to]->on_paxos_2b(t, participant, vote, acceptor);
    });
    return;
  }
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kPaxos2b));
  codec::encode_paxos(w, {t->id, participant, vote, acceptor});
  send_small(from, to, w);
}

void LiveCluster::propagate_stamp(SiteId from, const TxnRecord& t,
                                  const std::vector<SiteId>& dests) {
  codec::Writer w;
  w.u8(static_cast<std::uint8_t>(codec::MsgType::kPropagate));
  codec::encode_propagate(w, {from, t.stamp});
  for (SiteId d : dests) {
    if (d == from) {
      post(d, [this, d, stamp = t.stamp] { oracle().on_propagate(d, stamp); });
    } else {
      send_small(from, d, w);
    }
  }
}

void LiveCluster::send_reconfig(SiteId /*from*/, SiteId to,
                                core::ReconfigMsg m) {
  post(to, [this, to, m = std::move(m)]() mutable {
    replica(to).on_reconfig(std::move(m));
  });
}

// --- inbound dispatch (always on dst's mailbox thread) -----------------------

const TxnPtr& LiveCluster::register_txn(SiteId dst, const TxnPtr& t) {
  auto& st = dispatch_state_[dst];
  auto [it, inserted] = st.txns.emplace(t->id, t);
  if (inserted) {
    st.txn_fifo.push_back(t->id);
    if (st.txn_fifo.size() > kTxnCacheCap) {
      const TxnId old = st.txn_fifo.front();
      st.txn_fifo.pop_front();
      st.txns.erase(old);
      st.pending.erase(old);
    }
  }
  return it->second;
}

void LiveCluster::deliver_term(SiteId dst, const TxnPtr& t) {
  // First record seen wins: the coordinator keeps its original pointer when
  // the sequencer echoes its own submission back.
  const TxnPtr canon = register_txn(dst, t);
  replicas_[dst]->on_term_delivered(canon);
  auto& st = dispatch_state_[dst];
  auto it = st.pending.find(canon->id);
  if (it != st.pending.end()) {
    auto fns = std::move(it->second);
    st.pending.erase(it);
    for (auto& fn : fns) fn(canon);
  }
}

void LiveCluster::with_txn(SiteId dst, const TxnId& id,
                           std::function<void(const TxnPtr&)> fn) {
  auto& st = dispatch_state_[dst];
  auto it = st.txns.find(id);
  if (it != st.txns.end()) {
    const TxnPtr t = it->second;
    fn(t);
    return;
  }
  st.pending[id].push_back(std::move(fn));
}

void LiveCluster::dispatch(SiteId src, SiteId dst,
                           std::vector<std::uint8_t> frame) {
  codec::Reader r(frame);
  const auto tag = r.u8();
  if (!tag) return;
  const auto type = static_cast<codec::MsgType>(*tag);
  if (trace_ != nullptr) {
    const SimTime t = now();
    trace_->message(class_of(type), src, dst, frame.size() + 4, t, t);
  }
  switch (type) {
    case codec::MsgType::kTermDeliver: {
      auto m = codec::decode_txn(r);
      if (!m) break;
      deliver_term(dst, std::make_shared<const TxnRecord>(std::move(*m)));
      return;
    }
    case codec::MsgType::kTermSubmit: {
      auto m = codec::decode_term_submit(r);
      if (!m) break;
      relay_term(std::make_shared<const TxnRecord>(std::move(m->txn)),
                 m->dests);
      return;
    }
    case codec::MsgType::kVote: {
      auto m = codec::decode_vote(r);
      if (!m) break;
      with_txn(dst, m->txn,
               [this, dst, voter = m->voter, v = m->vote](const TxnPtr& t) {
                 replicas_[dst]->on_vote(t, voter, v);
               });
      return;
    }
    case codec::MsgType::kDecision: {
      auto m = codec::decode_decision(r);
      if (!m) break;
      with_txn(dst, m->txn, [this, dst, c = m->commit](const TxnPtr& t) {
        replicas_[dst]->on_decision(t, c);
      });
      return;
    }
    case codec::MsgType::kPaxos2a: {
      auto m = codec::decode_paxos(r);
      if (!m) break;
      // An acceptor need not be a certification participant, so it may
      // never receive the termination record; Paxos acceptor logic only
      // needs the transaction's identity.
      auto& st = dispatch_state_[dst];
      auto it = st.txns.find(m->txn);
      TxnPtr t;
      if (it != st.txns.end()) {
        t = it->second;
      } else {
        auto stub = std::make_shared<TxnRecord>();
        stub->id = m->txn;
        t = stub;
      }
      replicas_[dst]->on_paxos_2a(t, m->participant, m->vote);
      return;
    }
    case codec::MsgType::kPaxos2b: {
      auto m = codec::decode_paxos(r);
      if (!m) break;
      with_txn(dst, m->txn,
               [this, dst, p = m->participant, v = m->vote,
                a = m->acceptor](const TxnPtr& t) {
                 replicas_[dst]->on_paxos_2b(t, p, v, a);
               });
      return;
    }
    case codec::MsgType::kReadRequest: {
      auto m = codec::decode_read_request(r);
      if (!m) break;
      // The served transaction exists only at its coordinator; the request
      // carries everything the serving side consults (its snapshot).
      auto shadow = std::make_shared<TxnRecord>();
      shadow->snap = m->snap;
      replicas_[dst]->serve_remote_read(
          m->requester, shadow, m->obj,
          [this, dst, requester = m->requester, req = m->req](
              bool ok, std::optional<store::Version> v) {
            codec::Writer w;
            w.u8(static_cast<std::uint8_t>(codec::MsgType::kReadReply));
            codec::encode_read_reply(
                w, {req, ok, v.has_value(), v ? *v : store::Version{},
                    v ? net::wire::kPayload : 0});
            send_frame(dst, requester, w);
          });
      return;
    }
    case codec::MsgType::kReadReply: {
      auto m = codec::decode_read_reply(r);
      if (!m) break;
      auto& st = dispatch_state_[dst];
      auto it = st.reads.find(m->req);
      if (it == st.reads.end()) break;
      PendingRead pr = std::move(it->second);
      st.reads.erase(it);
      if (m->ok) {
        replicas_[dst]->record_read(pr.t, pr.obj,
                                    m->has_version ? &m->version : nullptr);
      }
      pr.cb(m->ok);
      return;
    }
    case codec::MsgType::kPropagate: {
      auto m = codec::decode_propagate(r);
      if (!m) break;
      oracle().on_propagate(dst, m->stamp);
      return;
    }
    case codec::MsgType::kBatch: {
      auto m = codec::decode_batch(r);
      if (!m) break;
      // Each item is a complete tagged frame body; re-dispatch preserves
      // the sender's append order, so per-link FIFO survives coalescing.
      for (auto& inner : *m) dispatch(src, dst, std::move(inner));
      return;
    }
    case codec::MsgType::kControl:
      return;  // handshake-only; nothing to do mid-run
    case codec::MsgType::kClientHello:
    case codec::MsgType::kClientWelcome:
    case codec::MsgType::kClientReq:
    case codec::MsgType::kClientResp:
    case codec::MsgType::kPushback:
      break;  // client-protocol frames never travel between sites
  }
  GDUR_WARN("live: dropping malformed frame type=%u src=%u dst=%u",
            static_cast<unsigned>(*tag), static_cast<unsigned>(src),
            static_cast<unsigned>(dst));
}

}  // namespace gdur::live

// Real-socket transport with the simulator's delivery contract.
//
// Sites are connected by a full mesh of TCP connections, one per ordered
// pair (i, j): site i only ever writes on its (i, j) connection and site j
// only reads from it, so TCP's per-connection byte stream directly yields
// exactly-once, FIFO-per-link delivery — the contract core::Cluster
// documents for its transport seam.
//
// Two deployment shapes share this class:
//   * Loopback mesh (single process): every site lives in this process;
//     listeners bind 127.0.0.1:0 and the whole mesh is wired synchronously
//     in the constructor (PR 4 behavior).
//   * External mesh (multi-process, one gdur_site process per site): this
//     process IS site `self`; it binds the configured port, then dials every
//     peer with bounded retries (peers boot in any order) and accepts the
//     peers' inbound links. Only `self`'s outbound links exist here.
//
// Byte-moving runs on front::Reactor (epoll, poll() fallback) — the same
// engine the client front door uses.
//
// Link delay emulation: a received frame can be held on a real-clock timer
// wheel before dispatch. The emulated delay is constant per link, so
// deadlines on one link are monotone and the wheel's FIFO-within-slot
// ordering preserves the link FIFO contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "front/reactor.h"
#include "live/timer_wheel.h"

namespace gdur::live {

/// Where a site's inter-site listener lives (multi-process mesh).
struct SiteEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class LiveTransport {
 public:
  /// Called (on the reactor or timer thread) once a frame is due at its
  /// destination; expected to post decode+dispatch work to dst's mailbox.
  using Deliver =
      std::function<void(SiteId src, SiteId dst, std::vector<std::uint8_t>)>;

  /// Establishes the in-process loopback mesh synchronously: one listener
  /// per site on 127.0.0.1:0, then every ordered pair connects and
  /// identifies itself with a codec::ControlMsg hello. Throws
  /// std::runtime_error on failure. `wheel` must be started before start()
  /// and outlive this object.
  LiveTransport(int sites, TimerWheel& wheel, Deliver deliver);

  /// External (multi-process) mesh: this process is site `self`. Binds
  /// `peers[self]`, dials every other peer with bounded retries (they may
  /// not have booted yet), and accepts their inbound links. Blocks until
  /// the mesh is complete or the deadline passes; throws on failure.
  LiveTransport(int sites, SiteId self, const std::vector<SiteEndpoint>& peers,
                TimerWheel& wheel, Deliver deliver,
                std::chrono::seconds connect_deadline = std::chrono::seconds(30));

  ~LiveTransport() { stop(); }

  /// Per-link one-way delay to emulate (0 = deliver on arrival).
  void set_link_delay(SiteId src, SiteId dst, std::chrono::nanoseconds d);

  void start() { reactor_.start(); }
  void stop() { reactor_.stop(); }

  /// Queues `body` (type tag + encoded message) on the (src, dst) link.
  /// Thread-safe; src != dst (self-sends bypass the transport). In the
  /// external mesh src must be `self`.
  void send(SiteId src, SiteId dst, const std::vector<std::uint8_t>& body);

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

  /// The byte-moving reactor, exposed so the observability plane can attach
  /// its stats slot and stall-watchdog probes.
  [[nodiscard]] front::Reactor& reactor() { return reactor_; }

  /// Per-site stats slots: send() records kMsgsSent/kBytesSent/kMsgBytes
  /// into `slot_of(src)`. Set before start(); not owned.
  void set_stats(std::function<obs::StatsSlot*(SiteId)> slot_of) {
    slot_of_ = std::move(slot_of);
  }

 private:
  [[nodiscard]] int link_index(SiteId src, SiteId dst) const {
    return static_cast<int>(src) * sites_ + static_cast<int>(dst);
  }
  void install_frame_handler();
  void register_inbound(int conn, SiteId src, SiteId dst);

  int sites_;
  TimerWheel& wheel_;
  Deliver deliver_;
  front::Reactor reactor_;
  std::vector<int> out_conn_;                   // link index -> conn id
  std::vector<std::pair<SiteId, SiteId>> in_link_;  // conn id -> (src,dst)
  std::vector<std::chrono::nanoseconds> delay_;  // link index -> delay
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::function<obs::StatsSlot*(SiteId)> slot_of_;  // set before start()
};

}  // namespace gdur::live

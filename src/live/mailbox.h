// Single-consumer mailbox — the live runtime's threading invariant.
//
// Each site's core::Replica is pinned to one worker thread that drains this
// mailbox; every protocol handler, client-flow continuation and timer
// callback for the site runs as a posted task on that thread. Replica code
// therefore stays single-threaded internally, exactly as it is under the
// discrete-event simulator — the mailbox is the live analogue of the sim's
// per-site event ordering.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>

#include "common/analysis_annotations.h"
#include "common/thread_annotations.h"

namespace gdur::obs {
class StatsSlot;
}

namespace gdur::live {

class Mailbox {
 public:
  using Task = std::function<void()>;

  /// Enqueues `fn` (any thread). Tasks posted after stop() are dropped.
  void post(Task fn);

  /// Consumer loop: runs tasks in FIFO order until stop(). Call from
  /// exactly one thread. Blocks on the queue condvar when idle (that is
  /// its job) but must never sleep for a fixed duration — latency under
  /// load comes from the tasks, not the loop.
  GDUR_HOT_PATH("nosleep") void run();

  /// Wakes the consumer and ends run(). Remaining queued tasks are
  /// discarded (teardown semantics: in-flight work past the quiesce grace
  /// period is abandoned, never half-run on a foreign thread).
  void stop();

  [[nodiscard]] std::uint64_t posted() const {
    return posted_.load(std::memory_order_relaxed);
  }
  /// Tasks the consumer has fully run. With posted(), this is the
  /// watchdog's progress/pending pair: pending = posted() - executed().
  /// Both are lock-free reads, safe from the watchdog's scanning thread.
  [[nodiscard]] std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Optional stats slot: the consumer records Counter::kMailboxTasks for
  /// every task it runs. Set before run() spins up; not owned.
  void set_stats(obs::StatsSlot* s) { stats_ = s; }

  /// Optional idle hook, run on the consumer thread whenever the queue runs
  /// dry — after the last queued task, before blocking — and once more at
  /// stop(). This is the flush point for per-destination message coalescing
  /// (live vote/ack batching): batches fill while the site is busy and
  /// drain the instant it has nothing left to do, so batching never delays
  /// a message the protocol is waiting on. Set before run(); must not post
  /// back into this mailbox from the final (post-stop) invocation.
  void set_idle(Task fn) { idle_ = std::move(fn); }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Task> q_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> posted_{0};
  std::atomic<std::uint64_t> executed_{0};
  obs::StatsSlot* stats_ = nullptr;  // set before run(), read by consumer
  Task idle_;                        // set before run(), run by consumer
  bool stopped_ GUARDED_BY(mu_) = false;
};

}  // namespace gdur::live

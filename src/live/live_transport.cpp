#include "live/live_transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "net/codec.h"
#include "obs/stats.h"

namespace gdur::live {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("live transport: ") + what + ": " +
                           std::strerror(errno));
}

void write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail("handshake write");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void read_all(int fd, std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    // gdur-lint: allow(live/blocking-call) handshake runs on the caller's setup thread, before the event loop starts
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      fail("handshake read");
    }
    if (r == 0) fail("handshake eof");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

}  // namespace

LiveTransport::LiveTransport(int sites, TimerWheel& wheel, Deliver deliver)
    : sites_(sites),
      wheel_(wheel),
      deliver_(std::move(deliver)),
      out_conn_(static_cast<std::size_t>(sites) * sites, -1),
      delay_(static_cast<std::size_t>(sites) * sites,
             std::chrono::nanoseconds(0)) {
  // 1. One listener per site on an ephemeral loopback port.
  std::vector<int> listeners(sites, -1);
  std::vector<std::uint16_t> ports(sites, 0);
  for (int s = 0; s < sites; ++s) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      fail("bind");
    if (::listen(fd, sites) != 0) fail("listen");
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
      fail("getsockname");
    listeners[s] = fd;
    ports[s] = ntohs(addr.sin_port);
  }

  // 2. All connects first (the listen backlog holds them), each announcing
  //    its source site with a framed ControlMsg hello.
  for (int i = 0; i < sites; ++i) {
    for (int j = 0; j < sites; ++j) {
      if (i == j) continue;
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) fail("socket");
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(ports[j]);
      // gdur-lint: allow(live/blocking-call) mesh setup on the caller's thread, before the event loop starts
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
        fail("connect");
      net::codec::Writer w;
      w.u8(static_cast<std::uint8_t>(net::codec::MsgType::kControl));
      net::codec::encode_control(
          w, {1 /* hello */, static_cast<std::uint64_t>(i)});
      const auto len = static_cast<std::uint32_t>(w.size());
      std::uint8_t hdr[4] = {static_cast<std::uint8_t>(len & 0xff),
                             static_cast<std::uint8_t>((len >> 8) & 0xff),
                             static_cast<std::uint8_t>((len >> 16) & 0xff),
                             static_cast<std::uint8_t>((len >> 24) & 0xff)};
      write_all(fd, hdr, 4);
      write_all(fd, w.data().data(), w.size());
      out_conn_[link_index(static_cast<SiteId>(i), static_cast<SiteId>(j))] =
          loop_.add_connection(fd);
      // Outbound connections are write-only (the peer never sends on
      // them); keep in_link_ index-aligned with conn ids regardless.
      in_link_.emplace_back(0, 0);
    }
  }

  // 3. Accept and identify inbound connections at each site.
  for (int j = 0; j < sites; ++j) {
    for (int k = 0; k < sites - 1; ++k) {
      // gdur-lint: allow(live/blocking-call) mesh setup on the caller's thread, before the event loop starts
      const int fd = ::accept(listeners[j], nullptr, nullptr);
      if (fd < 0) fail("accept");
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      std::uint8_t hdr[4];
      read_all(fd, hdr, 4);
      const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                                (static_cast<std::uint32_t>(hdr[1]) << 8) |
                                (static_cast<std::uint32_t>(hdr[2]) << 16) |
                                (static_cast<std::uint32_t>(hdr[3]) << 24);
      if (len == 0 || len > 64) fail("bad hello frame");
      std::vector<std::uint8_t> body(len);
      read_all(fd, body.data(), len);
      net::codec::Reader r(body);
      const auto tag = r.u8();
      if (!tag ||
          *tag != static_cast<std::uint8_t>(net::codec::MsgType::kControl))
        fail("bad hello tag");
      const auto hello = net::codec::decode_control(r);
      if (!hello || hello->kind != 1 ||
          hello->arg >= static_cast<std::uint64_t>(sites))
        fail("bad hello body");
      const auto src = static_cast<SiteId>(hello->arg);
      const int conn = loop_.add_connection(fd);
      if (static_cast<std::size_t>(conn) >= in_link_.size())
        in_link_.resize(conn + 1);
      in_link_[conn] = {src, static_cast<SiteId>(j)};
    }
    ::close(listeners[j]);
  }

  loop_.set_frame_handler([this](int conn_id, std::vector<std::uint8_t> f) {
    const auto [src, dst] = in_link_[conn_id];
    const auto d = delay_[link_index(src, dst)];
    if (d.count() == 0) {
      deliver_(src, dst, std::move(f));
    } else {
      wheel_.schedule_after(
          d, [this, src, dst, f = std::move(f)]() mutable {
            deliver_(src, dst, std::move(f));
          });
    }
  });
}

void LiveTransport::set_link_delay(SiteId src, SiteId dst,
                                   std::chrono::nanoseconds d) {
  delay_[link_index(src, dst)] = d;
}

void LiveTransport::send(SiteId src, SiteId dst,
                         const std::vector<std::uint8_t>& body) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(body.size() + 4, std::memory_order_relaxed);
  if (slot_of_) {
    if (auto* slot = slot_of_(src)) {
      slot->record(obs::Counter::kMsgsSent);
      slot->record(obs::Counter::kBytesSent, body.size() + 4);
      slot->record_value(obs::Hist::kMsgBytes, body.size() + 4);
    }
  }
  loop_.send_frame(out_conn_[link_index(src, dst)], body);
}

}  // namespace gdur::live

#include "live/live_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "net/codec.h"
#include "obs/stats.h"

namespace gdur::live {

namespace {

using std::chrono::steady_clock;

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("live transport: ") + what + ": " +
                           std::strerror(errno));
}

void write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    // gdur-lint: allow(live/blocking-call) handshake runs on the caller's setup thread, before the reactor starts
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      fail("handshake write");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void read_all(int fd, std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    // gdur-lint: allow(live/blocking-call) handshake runs on the caller's setup thread, before the reactor starts
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      fail("handshake read");
    }
    if (r == 0) fail("handshake eof");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    fail("bad host");
  }
  return addr;
}

/// Sends the framed ControlMsg hello announcing `src` on `fd`.
void send_hello(int fd, SiteId src) {
  net::codec::Writer w;
  w.u8(static_cast<std::uint8_t>(net::codec::MsgType::kControl));
  net::codec::encode_control(w,
                             {1 /* hello */, static_cast<std::uint64_t>(src)});
  const auto len = static_cast<std::uint32_t>(w.size());
  std::uint8_t hdr[4] = {static_cast<std::uint8_t>(len & 0xff),
                         static_cast<std::uint8_t>((len >> 8) & 0xff),
                         static_cast<std::uint8_t>((len >> 16) & 0xff),
                         static_cast<std::uint8_t>((len >> 24) & 0xff)};
  write_all(fd, hdr, 4);
  write_all(fd, w.data().data(), w.size());
}

/// Reads the framed hello off an inbound connection; returns the announced
/// source site. Throws on malformed input.
SiteId read_hello(int fd, int sites) {
  std::uint8_t hdr[4];
  read_all(fd, hdr, 4);
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            (static_cast<std::uint32_t>(hdr[1]) << 8) |
                            (static_cast<std::uint32_t>(hdr[2]) << 16) |
                            (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (len == 0 || len > 64) fail("bad hello frame");
  std::vector<std::uint8_t> body(len);
  read_all(fd, body.data(), len);
  net::codec::Reader r(body);
  const auto tag = r.u8();
  if (!tag || *tag != static_cast<std::uint8_t>(net::codec::MsgType::kControl))
    fail("bad hello tag");
  const auto hello = net::codec::decode_control(r);
  if (!hello || hello->kind != 1 ||
      hello->arg >= static_cast<std::uint64_t>(sites))
    fail("bad hello body");
  return static_cast<SiteId>(hello->arg);
}

}  // namespace

void LiveTransport::register_inbound(int conn, SiteId src, SiteId dst) {
  if (static_cast<std::size_t>(conn) >= in_link_.size())
    in_link_.resize(static_cast<std::size_t>(conn) + 1, {kNoSite, kNoSite});
  in_link_[static_cast<std::size_t>(conn)] = {src, dst};
}

void LiveTransport::install_frame_handler() {
  reactor_.set_frame_handler([this](int conn_id,
                                    std::vector<std::uint8_t> f) {
    if (static_cast<std::size_t>(conn_id) >= in_link_.size()) return;
    const auto [src, dst] = in_link_[static_cast<std::size_t>(conn_id)];
    if (src == kNoSite) return;  // write-only outbound link
    const auto d = delay_[static_cast<std::size_t>(link_index(src, dst))];
    if (d.count() == 0) {
      deliver_(src, dst, std::move(f));
    } else {
      wheel_.schedule_after(d, [this, src, dst, f = std::move(f)]() mutable {
        deliver_(src, dst, std::move(f));
      });
    }
  });
}

LiveTransport::LiveTransport(int sites, TimerWheel& wheel, Deliver deliver)
    : sites_(sites),
      wheel_(wheel),
      deliver_(std::move(deliver)),
      out_conn_(static_cast<std::size_t>(sites) * sites, -1),
      delay_(static_cast<std::size_t>(sites) * sites,
             std::chrono::nanoseconds(0)) {
  // 1. One listener per site on an ephemeral loopback port.
  std::vector<int> listeners(sites, -1);
  std::vector<std::uint16_t> ports(sites, 0);
  for (int s = 0; s < sites; ++s) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      fail("bind");
    if (::listen(fd, sites) != 0) fail("listen");
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
      fail("getsockname");
    listeners[s] = fd;
    ports[s] = ntohs(addr.sin_port);
  }

  // 2. All connects first (the listen backlog holds them), each announcing
  //    its source site with a framed ControlMsg hello.
  for (int i = 0; i < sites; ++i) {
    for (int j = 0; j < sites; ++j) {
      if (i == j) continue;
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) fail("socket");
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(ports[j]);
      // gdur-lint: allow(live/blocking-call) mesh setup on the caller's thread, before the reactor starts
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
        fail("connect");
      send_hello(fd, static_cast<SiteId>(i));
      const int conn = reactor_.add_connection(fd);
      out_conn_[static_cast<std::size_t>(
          link_index(static_cast<SiteId>(i), static_cast<SiteId>(j)))] = conn;
      // Outbound connections are write-only (the peer never sends on
      // them); keep in_link_ index-aligned with conn ids regardless.
      register_inbound(conn, kNoSite, kNoSite);
    }
  }

  // 3. Accept and identify inbound connections at each site.
  for (int j = 0; j < sites; ++j) {
    for (int k = 0; k < sites - 1; ++k) {
      // gdur-lint: allow(live/blocking-call) mesh setup on the caller's thread, before the reactor starts
      const int fd = ::accept(listeners[j], nullptr, nullptr);
      if (fd < 0) fail("accept");
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const SiteId src = read_hello(fd, sites);
      const int conn = reactor_.add_connection(fd);
      register_inbound(conn, src, static_cast<SiteId>(j));
    }
    ::close(listeners[j]);
  }

  install_frame_handler();
}

LiveTransport::LiveTransport(int sites, SiteId self,
                             const std::vector<SiteEndpoint>& peers,
                             TimerWheel& wheel, Deliver deliver,
                             std::chrono::seconds connect_deadline)
    : sites_(sites),
      wheel_(wheel),
      deliver_(std::move(deliver)),
      out_conn_(static_cast<std::size_t>(sites) * sites, -1),
      delay_(static_cast<std::size_t>(sites) * sites,
             std::chrono::nanoseconds(0)) {
  if (peers.size() != static_cast<std::size_t>(sites)) {
    errno = EINVAL;
    fail("endpoint count != sites");
  }
  const auto deadline = steady_clock::now() + connect_deadline;

  // 1. Bind this site's listener first, so peers dialing us in any boot
  //    order eventually succeed.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) fail("socket");
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in laddr = make_addr(peers[self].host, peers[self].port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&laddr), sizeof laddr) != 0)
    fail("bind");
  if (::listen(lfd, sites) != 0) fail("listen");

  // 2. Dial every peer with bounded retries (their processes may still be
  //    booting; ECONNREFUSED just means "not yet").
  for (int j = 0; j < sites; ++j) {
    if (j == static_cast<int>(self)) continue;
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) fail("socket");
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      sockaddr_in addr = make_addr(peers[j].host, peers[j].port);
      // gdur-lint: allow(live/blocking-call) mesh setup on the caller's thread, before the reactor starts
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
        break;
      ::close(fd);
      fd = -1;
      if (steady_clock::now() >= deadline) fail("peer connect timed out");
      // gdur-lint: allow(live/blocking-call) boot-order retry pacing on the setup thread, before the reactor starts
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    send_hello(fd, self);
    const int conn = reactor_.add_connection(fd);
    out_conn_[static_cast<std::size_t>(
        link_index(self, static_cast<SiteId>(j)))] = conn;
    register_inbound(conn, kNoSite, kNoSite);
  }

  // 3. Accept the peers' inbound links, waiting out stragglers up to the
  //    deadline.
  for (int k = 0; k < sites - 1; ++k) {
    pollfd p{lfd, POLLIN, 0};
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - steady_clock::now());
      if (left.count() <= 0) fail("peer accept timed out");
      // gdur-lint: allow(live/blocking-call) mesh setup on the caller's thread, before the reactor starts
      const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc > 0) break;
      if (rc < 0 && errno != EINTR) fail("poll");
    }
    // gdur-lint: allow(live/blocking-call) mesh setup on the caller's thread, before the reactor starts
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) fail("accept");
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const SiteId src = read_hello(fd, sites);
    const int conn = reactor_.add_connection(fd);
    register_inbound(conn, src, self);
  }
  ::close(lfd);  // static membership: nobody else will dial in

  install_frame_handler();
}

void LiveTransport::set_link_delay(SiteId src, SiteId dst,
                                   std::chrono::nanoseconds d) {
  delay_[static_cast<std::size_t>(link_index(src, dst))] = d;
}

void LiveTransport::send(SiteId src, SiteId dst,
                         const std::vector<std::uint8_t>& body) {
  const int conn =
      out_conn_[static_cast<std::size_t>(link_index(src, dst))];
  if (conn < 0) return;  // not our link (external mesh: src must be self)
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(body.size() + 4, std::memory_order_relaxed);
  if (slot_of_) {
    if (auto* slot = slot_of_(src)) {
      slot->record(obs::Counter::kMsgsSent);
      slot->record(obs::Counter::kBytesSent, body.size() + 4);
      slot->record_value(obs::Hist::kMsgBytes, body.size() + 4);
    }
  }
  reactor_.send_frame(conn, body);
}

}  // namespace gdur::live

#include "live/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "obs/stats.h"

namespace gdur::live {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

EventLoop::~EventLoop() {
  stop();
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
}

int EventLoop::add_connection(int fd) {
  set_nonblocking(fd);
  auto c = std::make_unique<Conn>();
  c->fd = fd;
  conns_.push_back(std::move(c));
  return static_cast<int>(conns_.size()) - 1;
}

void EventLoop::start() {
  if (running_) return;
  if (::pipe(wake_pipe_) != 0) {
    GDUR_ERROR("live: pipe() failed: %s", std::strerror(errno));
    return;
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
  {
    // The loop thread does not exist yet, but locking keeps the invariant
    // uniform (and the thread-safety analysis happy) on this cold path.
    MutexLock lock(&stop_mu_);
    stopping_ = false;
  }
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void EventLoop::stop() {
  if (!running_) return;
  {
    MutexLock lock(&stop_mu_);
    stopping_ = true;
  }
  wake();
  thread_.join();
  running_ = false;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void EventLoop::wake() {
  const char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

void EventLoop::send_frame(int conn_id,
                           const std::vector<std::uint8_t>& body) {
  if (conn_id < 0 || conn_id >= static_cast<int>(conns_.size())) return;
  Conn& c = *conns_[conn_id];
  const auto len = static_cast<std::uint32_t>(body.size());
  {
    MutexLock lock(&c.out_mu);
    c.out.push_back(static_cast<std::uint8_t>(len & 0xff));
    c.out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
    c.out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
    c.out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
    c.out.insert(c.out.end(), body.begin(), body.end());
  }
  queued_bytes_.fetch_add(body.size() + 4, std::memory_order_relaxed);
  wake();
}

void EventLoop::loop() {
  std::vector<pollfd> fds;
  for (;;) {
    {
      MutexLock lock(&stop_mu_);
      if (stopping_) return;
    }
    fds.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (auto& cp : conns_) {
      Conn& c = *cp;
      short ev = 0;
      if (!c.dead) {
        ev = POLLIN;
        MutexLock lock(&c.out_mu);
        if (c.out.size() > c.out_off) ev |= POLLOUT;
      }
      fds.push_back(pollfd{c.dead ? -1 : c.fd, ev, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      GDUR_ERROR("live: poll failed: %s", std::strerror(errno));
      return;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (stats_ != nullptr) stats_->record(obs::Counter::kLoopWakeups);
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
    }
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Conn& c = *conns_[i];
      if (c.dead) continue;
      const short rev = fds[i + 1].revents;
      if (rev & (POLLIN | POLLERR | POLLHUP)) {
        handle_readable(c, static_cast<int>(i));
      }
      if (!c.dead && (rev & POLLOUT)) flush_writable(c);
      // A send may have been queued after we built the poll set; flush
      // opportunistically so small runs don't wait a poll cycle.
      if (!c.dead) flush_writable(c);
    }
  }
}

void EventLoop::handle_readable(Conn& c, int conn_id) {
  std::uint8_t buf[16384];
  for (;;) {
    const ssize_t n = ::read(c.fd, buf, sizeof buf);
    if (n > 0) {
      c.in.insert(c.in.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer closed (normal during teardown) or hard error.
    c.dead = true;
    break;
  }
  // Extract complete frames.
  while (c.in.size() - c.in_off >= 4) {
    const std::uint32_t len = read_le32(c.in.data() + c.in_off);
    if (len > kMaxFrame) {
      GDUR_ERROR("live: oversized frame (%u bytes), dropping conn", len);
      c.dead = true;
      return;
    }
    if (c.in.size() - c.in_off < 4 + static_cast<std::size_t>(len)) break;
    std::vector<std::uint8_t> frame(c.in.begin() + c.in_off + 4,
                                    c.in.begin() + c.in_off + 4 + len);
    c.in_off += 4 + len;
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    if (on_frame_) on_frame_(conn_id, std::move(frame));
  }
  if (c.in_off > 0 && c.in_off == c.in.size()) {
    c.in.clear();
    c.in_off = 0;
  } else if (c.in_off > (1u << 16)) {
    c.in.erase(c.in.begin(), c.in.begin() + c.in_off);
    c.in_off = 0;
  }
}

void EventLoop::flush_writable(Conn& c) {
  MutexLock lock(&c.out_mu);
  while (c.out.size() > c.out_off) {
    // MSG_NOSIGNAL: a peer closing during teardown must not SIGPIPE us.
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      flushed_bytes_.fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    c.dead = true;  // EPIPE etc.: peer gone (teardown)
    // Bytes abandoned with the connection count as flushed so the
    // watchdog's pending-output gauge returns to zero.
    flushed_bytes_.fetch_add(c.out.size() - c.out_off,
                             std::memory_order_relaxed);
    break;
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
  } else if (c.out_off > (1u << 16)) {
    c.out.erase(c.out.begin(), c.out.begin() + c.out_off);
    c.out_off = 0;
  }
}

}  // namespace gdur::live

// Live loopback harness: drives the existing workload generators against a
// LiveCluster with closed- or open-loop clients, records per-site metrics
// and a checkable history, and verifies each protocol's claimed criterion —
// the live counterpart of harness::run_experiment.
#pragma once

#include <cstdint>
#include <string>

#include "harness/metrics.h"
#include "obs/plane.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "workload/workload.h"

namespace gdur::live {

struct LiveRunConfig {
  std::string protocol = "P-Store";
  int sites = 3;
  /// Closed-loop client flows, assigned round-robin to sites. Each flow
  /// keeps exactly one interactive transaction in flight (§8.1's YCSB
  /// client threads). Ignored when open_loop_tps > 0.
  int clients = 16;
  /// Measured wall-clock run duration.
  double secs = 2.0;
  workload::WorkloadSpec workload = workload::WorkloadSpec::A(0.8);
  std::uint64_t objects_per_site = 4096;
  int partitions_per_site = 2;
  int replication = 1;
  std::uint64_t seed = 42;
  /// Keyspace shards per replica (DESIGN.md §14). > 1 spawns per-(site,
  /// shard) certifier worker threads in the live runtime; 1 keeps the
  /// serial single-thread-per-site pipeline.
  int shards_per_site = 1;
  /// Certifier workers wait out the analytic certification service time
  /// before computing the verdict (cores-scaling benchmark mode; see
  /// EXPERIMENTS.md). With shards_per_site = 1 the wait stalls the site
  /// thread — the serial baseline; with > 1 it stalls only the shard's
  /// worker, so disjoint-footprint certifications overlap.
  bool live_certify_model = false;
  /// Analytic CPU service times (certify_base &c.). The live runtime spends
  /// real CPU for everything else; this model only drives the
  /// live_certify_model waits and the trace annotations.
  sim::CostModel cost{};
  /// Poisson arrivals at this total offered rate instead of closed loops
  /// (0 = closed loop).
  double open_loop_tps = 0.0;
  /// Per-destination vote/ack coalescing into kBatch frames (see
  /// LiveConfig::coalesce).
  bool coalesce = false;
  /// Emulated link delay = topology latency × this (see LiveConfig).
  double delay_scale = 0.0;
  /// Verify the recorded history against the protocol's criterion.
  bool check = true;
  /// Grace period for in-flight transactions after the measurement window.
  double drain_secs = 2.0;
  obs::TraceRecorder* trace = nullptr;
  /// Production observability plane (telemetry, flight recorder, watchdog,
  /// invariant monitor). When set, a background thread scans the watchdog
  /// and — if `snapshot_prefix` is non-empty — periodically writes
  /// `<prefix>.json` / `<prefix>.prom` snapshots and flight dumps to
  /// `<prefix>.flight.txt` / `<prefix>.flight.trace.json`. Not owned.
  obs::ObsPlane* plane = nullptr;
  double snapshot_every_secs = 1.0;
  std::string snapshot_prefix;
};

struct LiveRunResult {
  std::string protocol;
  std::string criterion;
  harness::Metrics metrics;
  double wall_secs = 0.0;        // measurement window actually elapsed
  double throughput_tps = 0.0;   // committed txns / wall_secs
  bool checker_ok = true;
  std::string checker_detail;
  std::uint64_t messages = 0;  // frames over the live transport
  std::uint64_t bytes = 0;
  std::uint64_t batches = 0;       // kBatch frames sent (coalescing on)
  std::uint64_t batched_msgs = 0;  // messages carried inside them
  /// True when a shutdown signal cut the measurement window short (the run
  /// still drained and checked normally).
  bool interrupted = false;
  /// Client flows still in flight when the drain grace period expired
  /// (0 on a healthy run).
  int hung_clients = 0;
  /// Observability-plane verdicts (0 unless cfg.plane was attached; all
  /// three should be 0 on a healthy run).
  std::uint64_t watchdog_trips = 0;
  std::uint64_t invariant_violations = 0;
  std::uint64_t flight_dumps = 0;
};

/// The consistency criterion each registry protocol claims (checker
/// vocabulary: SER, US, SI, PSI, NMSI, RC, RA).
[[nodiscard]] const char* criterion_of(const std::string& protocol);

/// Builds a LiveCluster for `cfg.protocol`, runs the workload over real
/// loopback sockets for `cfg.secs`, and returns merged metrics + verdict.
LiveRunResult run_live(const LiveRunConfig& cfg);

}  // namespace gdur::live

#include "live/live_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "checker/history.h"
#include "common/rng.h"
#include "front/signals.h"
#include "live/live_cluster.h"
#include "protocols/protocols.h"
#include "workload/client.h"

namespace gdur::live {

namespace {

using std::chrono::steady_clock;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Everything one site's clients share; touched only on that site's
/// mailbox thread once the run is going.
struct SiteCollector {
  harness::Metrics metrics;
  std::vector<checker::TxnOutcome> outcomes;
  std::vector<core::Cluster::InstallEvent> installs;
};

/// One closed-loop client flow: exactly one interactive transaction in
/// flight, relaunched from its own completion callback on the
/// coordinator's mailbox thread.
struct ClosedLoop : std::enable_shared_from_this<ClosedLoop> {
  LiveCluster& cl;
  SiteId site;
  workload::Generator gen;
  SiteCollector& col;
  std::atomic<bool>& running;
  std::atomic<int>& inflight;
  workload::TxnObserver observer;

  ClosedLoop(LiveCluster& c, SiteId s, const workload::WorkloadSpec& spec,
             SiteCollector& sc, std::atomic<bool>& run, std::atomic<int>& inf,
             std::uint64_t seed)
      : cl(c),
        site(s),
        gen(spec, c.partitioner(), s, seed),
        col(sc),
        running(run),
        inflight(inf) {
    observer = [this](const core::TxnRecord& t, bool committed) {
      col.outcomes.push_back({t, committed, cl.now()});
    };
  }

  void next() {
    if (!running.load(std::memory_order_acquire)) {
      inflight.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    auto self = shared_from_this();
    workload::run_transaction(
        cl, site, std::make_shared<workload::TxnProfile>(gen.next()),
        col.metrics, observer, [self] { self->next(); });
  }
};

/// Open-loop Poisson source for one site: arrivals fire regardless of
/// completions, paced by the cluster's real-clock run_after.
struct OpenLoop : std::enable_shared_from_this<OpenLoop> {
  LiveCluster& cl;
  SiteId site;
  workload::Generator gen;
  Rng arrivals;
  double rate;  // per-site arrivals per second
  SiteCollector& col;
  std::atomic<bool>& running;
  std::atomic<int>& inflight;
  workload::TxnObserver observer;

  OpenLoop(LiveCluster& c, SiteId s, const workload::WorkloadSpec& spec,
           SiteCollector& sc, std::atomic<bool>& run, std::atomic<int>& inf,
           double site_rate, std::uint64_t seed)
      : cl(c),
        site(s),
        gen(spec, c.partitioner(), s, seed),
        arrivals(mix64(seed ^ 0xabcdef)),
        rate(site_rate),
        col(sc),
        running(run),
        inflight(inf) {
    observer = [this](const core::TxnRecord& t, bool committed) {
      col.outcomes.push_back({t, committed, cl.now()});
    };
  }

  void arrive() {
    if (!running.load(std::memory_order_acquire)) return;
    inflight.fetch_add(1, std::memory_order_acq_rel);
    auto self = shared_from_this();
    workload::run_transaction(
        cl, site, std::make_shared<workload::TxnProfile>(gen.next()),
        col.metrics, observer, [self] {
          self->inflight.fetch_sub(1, std::memory_order_acq_rel);
        });
    const double gap = -std::log(1.0 - arrivals.next_double()) / rate;
    cl.run_after(site, seconds(gap), [self] { self->arrive(); });
  }
};

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

/// Background observability attendant: scans the stall watchdog a few times
/// a second, feeds the trace recorder's time-series track (the live
/// counterpart of harness::run_experiment's TimeSeriesSampler — same sample
/// names, read from the plane's lock-free counters instead of sim state),
/// and periodically writes plane snapshots when a prefix is configured.
class PlaneAttendant {
 public:
  PlaneAttendant(LiveCluster& cluster, const LiveRunConfig& cfg)
      : cl_(cluster), cfg_(cfg), plane_(*cfg.plane) {
    if (!cfg_.snapshot_prefix.empty()) {
      plane_.set_dump_sink([prefix = cfg_.snapshot_prefix](
                               const char* /*reason*/, const std::string& text,
                               const std::string& chrome_json) {
        write_text_file(prefix + ".flight.txt", text);
        write_text_file(prefix + ".flight.trace.json", chrome_json);
      });
    }
    thread_ = std::thread([this] { loop(); });
  }

  /// Runs one last scan + snapshot, then joins. Call before cluster.stop()
  /// so the final scan still sees live probes.
  void finish() {
    if (!thread_.joinable()) return;
    running_.store(false, std::memory_order_release);
    thread_.join();
  }

  ~PlaneAttendant() { finish(); }

 private:
  void loop() {
    const SimDuration bucket =
        cfg_.trace != nullptr ? cfg_.trace->config().timeseries_bucket : 0;
    SimTime next_sample = bucket;
    std::uint64_t last_committed = 0;
    SimTime last_sample_at = 0;
    const auto snap_every =
        std::chrono::duration_cast<steady_clock::duration>(
            std::chrono::duration<double>(
                std::max(cfg_.snapshot_every_secs, 0.05)));
    auto next_snap = steady_clock::now() + snap_every;
    while (running_.load(std::memory_order_acquire)) {
      // gdur-lint: allow(live/blocking-call) attendant thread pacing, not the event loop
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      const SimTime now = cl_.now();
      plane_.watchdog().scan(now);
      if (bucket > 0 && now >= next_sample) {
        sample(now, now - last_sample_at, last_committed);
        last_sample_at = now;
        next_sample = now + bucket;
      }
      if (!cfg_.snapshot_prefix.empty() && steady_clock::now() >= next_snap) {
        snapshot(now);
        next_snap += snap_every;
      }
    }
    const SimTime now = cl_.now();
    plane_.watchdog().scan(now);
    if (!cfg_.snapshot_prefix.empty()) snapshot(now);
  }

  void sample(SimTime now, SimDuration elapsed, std::uint64_t& last_committed) {
    std::uint64_t committed = 0;
    for (SiteId s = 0; s < static_cast<SiteId>(cfg_.sites); ++s)
      committed += plane_.slot(s).value(obs::Counter::kTxnCommitted);
    if (elapsed > 0)
      cfg_.trace->sample("throughput_tps", kNoSite, now,
                         static_cast<double>(committed - last_committed) /
                             to_seconds(elapsed));
    last_committed = committed;
    for (SiteId s = 0; s < static_cast<SiteId>(cfg_.sites); ++s) {
      // Lock-free push/pop mirrors, not Replica::queue_length(): the queue
      // itself belongs to the site thread.
      const auto& r = cl_.replica(s);
      const std::uint64_t pushes = r.queue_pushes();
      const std::uint64_t pops = r.queue_pops();
      cfg_.trace->sample("cert_queue", s, now,
                         static_cast<double>(pushes > pops ? pushes - pops : 0));
    }
  }

  void snapshot(SimTime now) {
    write_text_file(cfg_.snapshot_prefix + ".json", plane_.snapshot_json(now));
    write_text_file(cfg_.snapshot_prefix + ".prom",
                    plane_.snapshot_prometheus(now));
  }

  LiveCluster& cl_;
  const LiveRunConfig& cfg_;
  obs::ObsPlane& plane_;
  std::atomic<bool> running_{true};
  std::thread thread_;
};

}  // namespace

const char* criterion_of(const std::string& protocol) {
  if (protocol == "GMU" || protocol == "GMU*" || protocol == "GMU**")
    return "US";
  if (protocol == "Serrano") return "SI";
  if (protocol == "Walter") return "PSI";
  if (protocol == "Jessy2pc") return "NMSI";
  if (protocol == "RC") return "RC";
  if (protocol == "RAMP") return "RA";
  // P-Store, S-DUR and every P-Store variant claim serializability.
  return "SER";
}

LiveRunResult run_live(const LiveRunConfig& cfg) {
  LiveConfig lc;
  lc.base.sites = cfg.sites;
  lc.base.replication = cfg.replication;
  lc.base.objects_per_site = cfg.objects_per_site;
  lc.base.partitions_per_site = cfg.partitions_per_site;
  lc.base.seed = cfg.seed;
  lc.base.shards_per_site = cfg.shards_per_site;
  lc.base.live_certify_model = cfg.live_certify_model;
  lc.base.cost = cfg.cost;
  lc.base.trace = cfg.trace;
  lc.base.plane = cfg.plane;
  lc.delay_scale = cfg.delay_scale;
  lc.coalesce = cfg.coalesce;
  LiveCluster cluster(lc, protocols::by_name(cfg.protocol));

  std::vector<SiteCollector> col(static_cast<std::size_t>(cfg.sites));
  checker::History history;
  history.attach(cluster);  // installs its own observer; replaced next line
  cluster.set_install_observer([&col](const core::Cluster::InstallEvent& e) {
    col[e.site].installs.push_back(e);
  });

  std::atomic<bool> running{true};
  std::atomic<int> inflight{0};

  cluster.start();

  std::unique_ptr<PlaneAttendant> attendant;
  if (cfg.plane != nullptr)
    attendant = std::make_unique<PlaneAttendant>(cluster, cfg);

  std::vector<std::shared_ptr<ClosedLoop>> flows;
  std::vector<std::shared_ptr<OpenLoop>> sources;
  if (cfg.open_loop_tps > 0) {
    const double site_rate = cfg.open_loop_tps / cfg.sites;
    for (int s = 0; s < cfg.sites; ++s) {
      auto src = std::make_shared<OpenLoop>(
          cluster, static_cast<SiteId>(s), cfg.workload, col[s], running,
          inflight, site_rate, mix64(cfg.seed * 1000 + s));
      sources.push_back(src);
      cluster.post(static_cast<SiteId>(s), [src] { src->arrive(); });
    }
  } else {
    for (int i = 0; i < cfg.clients; ++i) {
      const auto site = static_cast<SiteId>(i % cfg.sites);
      auto flow = std::make_shared<ClosedLoop>(
          cluster, site, cfg.workload, col[site], running, inflight,
          mix64(cfg.seed * 1000 + i));
      flows.push_back(flow);
      inflight.fetch_add(1, std::memory_order_acq_rel);
      // Launch on the site's own thread: all of a site's client state is
      // only ever touched there.
      cluster.post(site, [flow] { flow->next(); });
    }
  }

  const auto t_start = steady_clock::now();
  // Interruptible measurement window: SIGTERM/SIGINT (front::signals) ends
  // the window early and proceeds to the normal drain, so an operator kill
  // still yields a complete, checkable history and a clean exit.
  const bool interrupted = front::interruptible_sleep(cfg.secs);
  running.store(false, std::memory_order_release);
  const double wall =
      std::chrono::duration<double>(steady_clock::now() - t_start).count();

  // Drain: let in-flight transactions terminate so the recorded history is
  // complete; anything still stuck after the grace period is reported.
  const auto deadline =
      steady_clock::now() + std::chrono::duration_cast<steady_clock::duration>(
                                std::chrono::duration<double>(cfg.drain_secs));
  while (inflight.load(std::memory_order_acquire) > 0 &&
         steady_clock::now() < deadline) {
    // gdur-lint: allow(live/blocking-call) drain poll on the harness thread, not the event loop
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const int hung = inflight.load(std::memory_order_acquire);
  if (attendant) attendant->finish();  // final scan while probes are live
  cluster.stop();

  LiveRunResult res;
  res.protocol = cfg.protocol;
  res.criterion = criterion_of(cfg.protocol);
  res.wall_secs = wall;
  res.messages = cluster.live_messages();
  res.bytes = cluster.live_bytes();
  res.batches = cluster.batches_sent();
  res.batched_msgs = cluster.batched_msgs();
  res.interrupted = interrupted;
  res.hung_clients = hung;
  for (auto& c : col) {
    res.metrics.merge_from(c.metrics);
    for (const auto& o : c.outcomes)
      history.record_txn(o.txn, o.committed, o.response_time);
    for (const auto& e : c.installs) history.record_install(e);
  }
  res.throughput_tps =
      wall > 0 ? static_cast<double>(res.metrics.committed()) / wall : 0.0;
  if (cfg.check) {
    const auto cr = history.check_criterion(res.criterion);
    res.checker_ok = cr.ok;
    res.checker_detail = cr.detail;
    // A failed criterion is exactly what the flight recorder exists for:
    // dump the retained window with the failure as the reason.
    if (!cr.ok && cfg.plane != nullptr) cfg.plane->dump_flight("checker");
  }
  if (cfg.plane != nullptr) {
    res.watchdog_trips = cfg.plane->watchdog().trips();
    res.invariant_violations = cfg.plane->invariants().violations();
    res.flight_dumps = cfg.plane->dumps();
  }
  return res;
}

}  // namespace gdur::live

// Real-clock timer wheel for the live runtime.
//
// A dedicated thread advances a hashed wheel of 1 ms slots and fires due
// callbacks in deadline order (FIFO within a slot — timers scheduled in
// order for the same deadline fire in that order, which is what preserves
// per-link FIFO when LiveTransport emulates constant link delays). The
// thread sleeps indefinitely when the wheel is empty.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace gdur::obs {
class StatsSlot;
}

namespace gdur::live {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  TimerWheel() = default;
  ~TimerWheel() { stop(); }

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  void start();
  /// Idempotent. Pending timers are discarded; the tick thread is joined.
  void stop();

  /// Fires `fn` on the wheel thread once `delay` has elapsed (rounded up to
  /// the next 1 ms tick). Thread-safe. Callbacks must be cheap — they are
  /// expected to post real work to a site mailbox.
  void schedule_after(std::chrono::nanoseconds delay, std::function<void()> fn);

  [[nodiscard]] std::uint64_t scheduled() const;

  /// Lock-free gauges for the stall watchdog. A healthy wheel with armed
  /// timers advances ticks() every 1 ms slot boundary, so the probe pair is
  /// (progress = ticks, pending = armed): a wedged wheel thread freezes the
  /// tick counter while timers stay armed.
  [[nodiscard]] std::uint64_t ticks() const {
    return ticks_n_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fired() const {
    return fired_n_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t armed() const {
    return armed_n_.load(std::memory_order_relaxed);
  }

  /// Optional stats slot: the wheel thread records Counter::kTimerFires per
  /// fired callback. Set before start(); not owned.
  void set_stats(obs::StatsSlot* s) { stats_ = s; }

 private:
  struct Entry {
    std::uint64_t tick;  // absolute tick at which to fire
    std::function<void()> fn;
  };

  static constexpr std::size_t kSlots = 4096;
  static constexpr auto kTick = std::chrono::milliseconds(1);

  void loop() EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t tick_of(Clock::time_point tp) const
      REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::vector<std::vector<Entry>> slots_ GUARDED_BY(mu_){kSlots};
  std::size_t armed_ GUARDED_BY(mu_) = 0;       // entries currently armed
  std::uint64_t scheduled_ GUARDED_BY(mu_) = 0; // lifetime count
  std::uint64_t cur_tick_ GUARDED_BY(mu_) = 0;  // next tick to process
  Clock::time_point t0_ GUARDED_BY(mu_);
  bool running_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Lock-free mirrors of the guarded state above, for watchdog probes.
  std::atomic<std::uint64_t> ticks_n_{0};
  std::atomic<std::uint64_t> fired_n_{0};
  std::atomic<std::uint64_t> armed_n_{0};
  obs::StatsSlot* stats_ = nullptr;  // set before start(), read by the thread
  std::thread thread_;
};

}  // namespace gdur::live

// Real-clock timer wheel for the live runtime.
//
// A dedicated thread advances a hashed wheel of 1 ms slots and fires due
// callbacks in deadline order (FIFO within a slot — timers scheduled in
// order for the same deadline fire in that order, which is what preserves
// per-link FIFO when LiveTransport emulates constant link delays). The
// thread sleeps indefinitely when the wheel is empty.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gdur::live {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  TimerWheel() = default;
  ~TimerWheel() { stop(); }

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  void start();
  /// Idempotent. Pending timers are discarded; the tick thread is joined.
  void stop();

  /// Fires `fn` on the wheel thread once `delay` has elapsed (rounded up to
  /// the next 1 ms tick). Thread-safe. Callbacks must be cheap — they are
  /// expected to post real work to a site mailbox.
  void schedule_after(std::chrono::nanoseconds delay, std::function<void()> fn);

  [[nodiscard]] std::uint64_t scheduled() const;

 private:
  struct Entry {
    std::uint64_t tick;  // absolute tick at which to fire
    std::function<void()> fn;
  };

  static constexpr std::size_t kSlots = 4096;
  static constexpr auto kTick = std::chrono::milliseconds(1);

  void loop();
  [[nodiscard]] std::uint64_t tick_of(Clock::time_point tp) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::vector<Entry>> slots_{kSlots};
  std::size_t armed_ = 0;       // entries currently in the wheel
  std::uint64_t scheduled_ = 0; // lifetime count
  std::uint64_t cur_tick_ = 0;  // next tick the loop will process
  Clock::time_point t0_;
  bool running_ = false;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace gdur::live

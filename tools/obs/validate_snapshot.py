#!/usr/bin/env python3
"""Validate an ObsPlane snapshot JSON against the checked-in shape contract.

Usage:
    validate_snapshot.py SNAPSHOT.json [--schema tools/obs/snapshot_schema.json]
                         [--require-clean]

Implements (by hand -- no third-party dependencies) the JSON-Schema subset
the contract uses: type, required, properties, additionalProperties, items,
enum, minItems, maxItems, minimum. Exits nonzero on the first structural
divergence, listing every error found with its JSON path.

--require-clean additionally asserts the run was healthy: zero watchdog
trips, zero invariant violations, zero flight dumps -- the CI gate for
fault-free smoke runs.
"""

import argparse
import json
import os
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; exclude it from the numeric types.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def validate(value, schema, path, errors):
    t = schema.get("type")
    if t is not None and not TYPE_CHECKS[t](value):
        errors.append(f"{path}: expected {t}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and TYPE_CHECKS["number"](value):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(sub, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key '{key}'")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} items < minItems "
                          f"{schema['minItems']}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(f"{path}: {len(value)} items > maxItems "
                          f"{schema['maxItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, sub in enumerate(value):
                validate(sub, items, f"{path}[{i}]", errors)


def check_clean(snap, errors):
    trips = snap.get("watchdog", {}).get("trips")
    violations = snap.get("invariants", {}).get("violations")
    dumps = snap.get("flight", {}).get("dumps")
    if trips != 0:
        errors.append(f"--require-clean: watchdog.trips = {trips} (want 0)")
    if violations != 0:
        errors.append(
            f"--require-clean: invariants.violations = {violations} (want 0)")
    if dumps != 0:
        errors.append(f"--require-clean: flight.dumps = {dumps} (want 0)")
    for ev in snap.get("invariants", {}).get("events", []):
        errors.append(f"--require-clean: invariant event: {ev}")
    for ev in snap.get("watchdog", {}).get("probes", []):
        errors.append(f"--require-clean: watchdog event: {ev}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("snapshot", help="snapshot JSON file to validate")
    ap.add_argument("--schema",
                    default=os.path.join(os.path.dirname(__file__),
                                         "snapshot_schema.json"))
    ap.add_argument("--require-clean", action="store_true",
                    help="fail on any watchdog trip, invariant violation, "
                         "or flight dump")
    args = ap.parse_args()

    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)
    try:
        with open(args.snapshot, encoding="utf-8") as f:
            snap = json.load(f)
    except json.JSONDecodeError as e:
        print(f"error: {args.snapshot} is not valid JSON: {e}")
        return 1

    errors = []
    validate(snap, schema, "$", errors)
    if args.require_clean:
        check_clean(snap, errors)

    if errors:
        for e in errors:
            print(f"error: {e}")
        print(f"FAIL: {args.snapshot}: {len(errors)} error(s)")
        return 1
    committed = snap.get("counters", {}).get("txn_committed")
    print(f"OK: {args.snapshot} conforms to the snapshot schema "
          f"(txn_committed={committed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

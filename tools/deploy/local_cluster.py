#!/usr/bin/env python3
"""Boot a multi-process G-DUR cluster on localhost and prove it healthy.

One OS process per site (examples/gdur_site), an external load generator
(examples/gdur_loadgen), per-process history dumps merged and checked
offline (examples/gdur_checkhist), and obs snapshots validated against the
shape contract (tools/obs/validate_snapshot.py --require-clean).

Usage:
    local_cluster.py --build build [--sites 3] [--protocol P-Store]
                     [--txns 10000] [--clients 8] [--coalesce]
                     [--kill-one] [--keep] [--workdir DIR]

Sequence:
  1. Write one config per site, start every gdur_site, wait for READY.
  2. Run gdur_loadgen until the transaction budget is met.
  3. With --kill-one: SIGTERM one site mid-run-end and require a clean
     (exit 0) drain from it — the rolling-restart story.
  4. SIGTERM the remaining sites; require exit 0 from each.
  5. gdur_checkhist over all dumps must report a clean criterion check.
  6. validate_snapshot.py --require-clean over each site's obs snapshot.

Exit 0 iff every step held. This is the CI multi-process smoke gate.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time


def free_ports(n):
    """Grab n distinct ephemeral ports (release before use; raceable but
    fine for CI smoke on a quiet host)."""
    import socket

    socks, ports = [], []
    for _ in range(n):
        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        socks.append(s)
        ports.append(s.getsockname()[1])
    for s in socks:
        s.close()
    return ports


def wait_ready(proc, name, deadline_s=30.0):
    """Block until the process prints READY port=N; return the port."""
    t0 = time.time()
    line = ""
    while time.time() - t0 < deadline_s:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("READY port="):
            return int(line.split("=", 1)[1])
    raise RuntimeError(f"{name} never became ready (last line: {line!r})")


def stop_site(proc, name, timeout_s=20.0):
    """SIGTERM a site and require a clean-drain exit 0."""
    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise RuntimeError(f"{name} hung on SIGTERM")
    if rc != 0:
        raise RuntimeError(f"{name} exited {rc} on SIGTERM (dirty drain)")
    print(f"  {name}: clean drain (exit 0)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default="build", help="CMake build directory")
    ap.add_argument("--sites", type=int, default=3)
    ap.add_argument("--protocol", default="P-Store")
    ap.add_argument("--txns", type=int, default=10000)
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--objects-per-site", type=int, default=1024)
    ap.add_argument("--partitions", type=int, default=2)
    ap.add_argument("--coalesce", action="store_true")
    ap.add_argument("--kill-one", action="store_true",
                    help="SIGTERM site N-1 first and separately")
    ap.add_argument("--workdir", default=None,
                    help="artifact directory (default: a temp dir)")
    ap.add_argument("--keep", action="store_true",
                    help="keep the artifact directory")
    args = ap.parse_args()

    build = os.path.abspath(args.build)
    exes = {n: os.path.join(build, "examples", f"gdur_{n}")
            for n in ("site", "loadgen", "checkhist")}
    for n, p in exes.items():
        if not os.path.exists(p):
            sys.exit(f"missing {p}; build the tree first")
    repo = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    validate = os.path.join(repo, "tools", "obs", "validate_snapshot.py")

    work = args.workdir or tempfile.mkdtemp(prefix="gdur_cluster_")
    os.makedirs(work, exist_ok=True)
    print(f"local_cluster: {args.sites} sites, protocol {args.protocol}, "
          f"artifacts in {work}")

    mesh = free_ports(args.sites)
    sites = []
    ok = False
    try:
        for s in range(args.sites):
            conf = os.path.join(work, f"site{s}.conf")
            with open(conf, "w") as f:
                f.write(f"sites={args.sites}\nself={s}\n")
                for p in range(args.sites):
                    f.write(f"peer.{p}=127.0.0.1:{mesh[p]}\n")
                f.write(f"protocol={args.protocol}\n"
                        f"client_port=0\n"
                        f"objects_per_site={args.objects_per_site}\n"
                        f"partitions_per_site={args.partitions}\n"
                        f"coalesce={1 if args.coalesce else 0}\n"
                        f"history={work}/site{s}.hist\n"
                        f"snapshot={work}/site{s}\n")
            sites.append(subprocess.Popen(
                [exes["site"], "--config", conf],
                stdout=subprocess.PIPE,
                stderr=open(os.path.join(work, f"site{s}.err"), "w"),
                text=True))
        fronts = [wait_ready(p, f"site{s}")
                  for s, p in enumerate(sites)]
        print(f"  front doors: {fronts}")

        cmd = [exes["loadgen"], "--clients", str(args.clients),
               "--txns", str(args.txns), "--secs", "0",
               "--objects", str(args.objects_per_site * args.sites),
               "--partitions", str(args.partitions),
               "--json", os.path.join(work, "loadgen.json")]
        for port in fronts:
            cmd += ["--site", f"127.0.0.1:{port}"]
        rc = subprocess.run(cmd).returncode
        if rc != 0:
            raise RuntimeError(f"loadgen exited {rc}")
        with open(os.path.join(work, "loadgen.json")) as f:
            res = json.load(f)
        if res["committed"] < args.txns * 0.9:
            raise RuntimeError(
                f"only {res['committed']} committed of {args.txns} asked")

        if args.kill_one:
            print(f"  SIGTERM site{args.sites - 1} (rolling-restart probe)")
            stop_site(sites[-1], f"site{args.sites - 1}")
        for s, p in enumerate(sites[:-1] if args.kill_one else sites):
            stop_site(p, f"site{s}")

        dumps = [os.path.join(work, f"site{s}.hist")
                 for s in range(args.sites)]
        rc = subprocess.run([exes["checkhist"]] + dumps).returncode
        if rc != 0:
            raise RuntimeError(f"checkhist exited {rc}")

        for s in range(args.sites):
            snap = os.path.join(work, f"site{s}.json")
            rc = subprocess.run(
                [sys.executable, validate, snap, "--require-clean"],
                stdout=subprocess.DEVNULL).returncode
            if rc != 0:
                raise RuntimeError(f"snapshot {snap} failed validation")
        print(f"local_cluster: PASS ({res['committed']} committed, "
              f"checker clean, {args.sites} clean drains)")
        ok = True
    finally:
        for p in sites:
            if p.poll() is None:
                p.kill()
        if not ok:
            for s in range(args.sites):
                err = os.path.join(work, f"site{s}.err")
                if os.path.exists(err):
                    with open(err) as f:
                        tail = f.readlines()[-5:]
                    sys.stderr.write(f"--- site{s}.err ---\n" + "".join(tail))
        if not args.keep and not args.workdir and ok:
            shutil.rmtree(work, ignore_errors=True)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

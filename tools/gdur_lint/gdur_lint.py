#!/usr/bin/env python3
"""gdur-lint: determinism / protocol-contract / lockset linter for G-DUR.

The simulator's core invariant is byte-identical replay: the same seed and
config must produce the same trace on every run, on every machine. The rules
here fence off the three ways that invariant historically broke (wall clocks,
hash-order iteration, blocking the event loop) plus two structural contracts
(every ProtocolSpec pins every realization point; every GUARDED_BY field is
accessed under its mutex).

Rules
-----
  determinism/wallclock    rand()/random_device/system_clock/steady_clock &c.
                           anywhere under src/ except src/live/ and
                           src/front/ (the live runtime and the production
                           front door are *supposed* to read real clocks).
  determinism/unordered-iter
                           range-for over a std::unordered_{map,set} in
                           src/{core,sim,protocols,obs,comm,checker} — hash
                           order must never feed message schedules, traces,
                           certification order, or checker output.
  live/blocking-call       blocking syscalls / sleeps in src/live/ outside
                           event_loop.cpp (the poll loop owns blocking), and
                           in the front-door dispatch path — src/front/
                           outside reactor.cpp (the reactor's wait owns
                           blocking), client.cpp (client-side code blocks by
                           design) and signals.cpp (interruptible_sleep is a
                           sanctioned sleep). FrontServer handlers run on
                           the site mailbox thread; a sleep or blocking
                           syscall there stalls the whole replica.
  front/dispatch-alloc     allocation or sleep inside the reactor demux
                           functions (run_epoll, drain_control,
                           update_interest in src/front/reactor.cpp) — the
                           wait / interest re-arm / readiness fan-out path
                           is allocation-free by contract (reactor.h);
                           buffer growth belongs to the per-connection
                           read/write handlers. The poll() fallback
                           (run_poll) is exempt: it rebuilds its interest
                           vectors each iteration with retained capacity.
  protocol/spec-complete   a factory that builds a fresh core::ProtocolSpec
                           must assign every realization point (name, theta,
                           choose, ac, xcast, certifying, vote_snd,
                           vote_recv, commute, certify) or inherit a named
                           default via `auto s = other_factory();`.
  membership/hardcoded-sites
                           a counter loop over the whole site universe
                           (`for (SiteId s = 0; s < ...sites(); ++s)` and
                           n_sites variants) in src/{core,protocols,comm} —
                           destinations and quorums must flow through the
                           MembershipView of the transaction's epoch, or the
                           loop silently includes retired sites and excludes
                           joiners.
  obs/hot-path-alloc       allocation, lock acquisition, container growth, or
                           a clock read inside a telemetry hot-path function
                           (record/record_*/append/poke) under src/obs/ —
                           the record path's contract is one relaxed atomic
                           op; timestamps are passed in by the caller.
  thread/shard-affinity    the sharded-certification contracts: (a) a
                           certify function (takes const CertContext&) that
                           walks the transaction footprint (ctx.txn.ws /
                           ctx.txn.reads) must gate each object on
                           ctx.owns(o) — under shards_per_site > 1 each
                           shard casts a sub-vote over its own slice and the
                           sub-votes AND-combine; an ungated walk re-judges
                           the full footprint on every shard. (b) per-shard
                           scheduling state (lane clocks, shard mailboxes,
                           shard mutexes) is owned by the cluster layer
                           (core/cluster.*, live/live_cluster.*); all other
                           code must go through run_certify / run_apply /
                           with_apply_exclusion.
  thread/guarded-by        a field declared GUARDED_BY(mu) is referenced in a
                           function body that neither holds a MutexLock on
                           mu, nor is annotated REQUIRES(mu) (at any
                           declaration), nor opts out with
                           NO_THREAD_SAFETY_ANALYSIS. A portable (textual)
                           shadow of Clang's -Wthread-safety so the invariant
                           holds even under GCC-only toolchains.
  lint/bad-allow           an allow comment with no reason, or naming an
                           unknown rule.
  lint/stale-allow         (only with --check-allows) an allow comment that
                           suppressed nothing — the rule no longer fires on
                           that line, so the comment is dead weight that
                           would silently re-arm if the code regressed
                           somewhere else. Delete it (or fix the line number
                           drift that orphaned it).
  build/untracked-tu       (only with --compile-commands) a src/**/*.cpp not
                           listed in compile_commands.json — catches stale
                           globs that silently drop a TU from the build.

Suppression
-----------
A diagnostic on line N is suppressed by an allow comment on line N or N-1:

    // gdur-lint: allow(rule-id[, rule-id...]) mandatory reason text

The reason is not optional: an allow() without one is itself an error.

Output is `file:line: rule-id: message`, one per line; exit 1 if anything
was reported, 0 when clean, 2 on usage errors.

Self-test: `gdur_lint.py --self-test` runs the rules over the corpus in
tools/gdur_lint/corpus/.  Each corpus file declares its pretend location
with `// lint-as: src/...` (rules are path-scoped); files under corpus/bad/
mark every expected diagnostic with `// expect: rule-id` on the same line,
and the produced set must match the expected set exactly.  Files under
corpus/good/ must produce nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

RULES = {
    "determinism/wallclock",
    "determinism/unordered-iter",
    "live/blocking-call",
    "front/dispatch-alloc",
    "protocol/spec-complete",
    "membership/hardcoded-sites",
    "obs/hot-path-alloc",
    "thread/shard-affinity",
    "thread/guarded-by",
    "lint/bad-allow",
    "lint/stale-allow",
    "build/untracked-tu",
}

# Realization points of the ProtocolSpec plug-in table (§3-§6 of the paper).
SPEC_POINTS = [
    "name", "theta", "choose", "ac", "xcast",
    "certifying", "vote_snd", "vote_recv", "commute", "certify",
]

WALLCLOCK_PATTERNS = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "std::chrono::high_resolution_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time()"),
]

BLOCKING_PATTERNS = [
    (re.compile(r"(?<![\w.])::poll\s*\("), "::poll()"),
    (re.compile(r"\bepoll_wait\s*\("), "epoll_wait()"),
    (re.compile(r"(?<![\w.])::select\s*\("), "::select()"),
    (re.compile(r"\bsleep_for\s*\("), "std::this_thread::sleep_for()"),
    (re.compile(r"\bsleep_until\s*\("), "std::this_thread::sleep_until()"),
    (re.compile(r"\busleep\s*\("), "usleep()"),
    (re.compile(r"\bnanosleep\s*\("), "nanosleep()"),
    (re.compile(r"(?<![\w.])::read\s*\("), "blocking ::read()"),
    (re.compile(r"(?<![\w.])::recv\s*\("), "blocking ::recv()"),
    (re.compile(r"(?<![\w.])::recvfrom\s*\("), "blocking ::recvfrom()"),
    (re.compile(r"(?<![\w.])::recvmsg\s*\("), "blocking ::recvmsg()"),
    (re.compile(r"(?<![\w.])::send\s*\("), "blocking ::send()"),
    (re.compile(r"(?<![\w.])::sendto\s*\("), "blocking ::sendto()"),
    (re.compile(r"(?<![\w.])::sendmsg\s*\("), "blocking ::sendmsg()"),
    (re.compile(r"(?<![\w.])::accept\s*\("), "blocking ::accept()"),
    (re.compile(r"(?<![\w.])::connect\s*\("), "blocking ::connect()"),
]

UNORDERED_DIRS = ("src/core/", "src/sim/", "src/protocols/", "src/obs/",
                  "src/comm/", "src/checker/")

# Telemetry record paths (obs/hot-path-alloc): function names treated as hot,
# and the constructs they must not contain. The contract (obs/stats.h):
# a record path is one relaxed atomic op — no allocation, no lock, no clock.
HOT_PATH_FN_RE = re.compile(r"^(?:record(?:_\w+)?|append|poke)$")

HOT_PATH_PATTERNS = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "malloc-family call"),
    (re.compile(r"\b(?:push_back|emplace_back|emplace|insert|resize"
                r"|reserve|push_front)\s*\("), "container growth"),
    (re.compile(r"\bstd\s*::\s*string\b"), "std::string construction"),
    (re.compile(r"\bmake_(?:unique|shared)\s*\("), "heap allocation"),
    (re.compile(r"\bMutexLock\b"), "MutexLock acquisition"),
    (re.compile(r"\b(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "lock acquisition"),
    (re.compile(r"(?:\.|->)\s*lock\s*\(\s*\)"), "explicit .lock()"),
    (re.compile(r"\bnow\s*\(\s*\)"), "clock read (pass the timestamp in)"),
]

# Reactor demux functions (front/dispatch-alloc): the wait / interest
# re-arm / readiness fan-out path is allocation-free by contract
# (front/reactor.h). run_poll is deliberately absent — the portable fallback
# rebuilds its pollfd/interest vectors each iteration (capacity retained).
DISPATCH_FN_RE = re.compile(r"^(?:run_epoll|drain_control|update_interest)$")

DISPATCH_ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "malloc-family call"),
    (re.compile(r"\b(?:push_back|emplace_back|emplace|insert|resize"
                r"|reserve|push_front)\s*\("), "container growth"),
    (re.compile(r"\bstd\s*::\s*string\b"), "std::string construction"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "heap allocation"),
    (re.compile(r"\bsleep_(?:for|until)\s*\("), "sleep"),
    (re.compile(r"\b(?:usleep|nanosleep)\s*\("), "sleep"),
]

MEMBERSHIP_DIRS = ("src/core/", "src/protocols/", "src/comm/")

# `for (SiteId s = 0; s < <count of sites>; ++s)` — a loop over the whole
# site universe. Matches sites()/n_sites/num_sites/.sites bounds; the loop
# variable must start at 0 (slices and partition-replica loops don't).
HARDCODED_SITES_RE = re.compile(
    r"for\s*\(\s*(?:core\s*::\s*)?(?:SiteId|int|unsigned|long|std::uint\d+_t"
    r"|std::size_t|size_t|auto)\s+(\w+)\s*=\s*0\s*;[^;]*?\b\1\s*<[^;]*?"
    r"(?:\bsites\s*\(\)|\bn_sites\b|\bnum_sites\b|\.sites\b|->\s*sites\b)"
    r"[^;]*;")

ALLOW_RE = re.compile(r"//\s*gdur-lint:\s*allow\(([^)]*)\)(.*)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([\w/\-]+)")
LINT_AS_RE = re.compile(r"//\s*lint-as:\s*(\S+)")


@dataclass
class Diag:
    path: str
    line: int
    rule: str
    msg: str


@dataclass
class SourceFile:
    """A parsed source file: raw text plus a comment/string-blanked twin.

    `code` has every comment and string/char literal replaced by spaces of
    equal length, so rule regexes never fire inside prose or string data and
    every offset maps 1:1 back to `raw` for line numbers.
    """
    path: str       # lint path (used for scoping + reporting)
    raw: str
    code: str = ""
    allows: dict[int, tuple[list[str], str]] = field(default_factory=dict)
    bad_allows: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.code = blank_comments_and_strings(self.raw)
        for i, line in enumerate(self.raw.splitlines(), start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
            # The reason ends at a nested `//` (e.g. corpus expect markers).
            reason = m.group(2).split("//")[0].strip()
            self.allows[i] = (rules, reason)
            if not reason or any(r not in RULES for r in rules):
                self.bad_allows.append(i)

    def line_of(self, offset: int) -> int:
        return self.raw.count("\n", 0, offset) + 1


def blank_comments_and_strings(text: str) -> str:
    out = list(text)
    i, n = 0, len(text)
    NONE, LINE, BLOCK, STR, CHR, RAWSTR = range(6)
    state = NONE
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NONE:
            if c == "/" and nxt == "/":
                state = LINE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "R" and nxt == '"':
                close = text.find("(", i + 2)
                if close != -1:
                    raw_delim = ")" + text[i + 2:close] + '"'
                    state = RAWSTR
                    for j in range(i, close + 1):
                        if text[j] != "\n":
                            out[j] = " "
                    i = close + 1
                    continue
            if c == '"':
                state = STR
                i += 1
                continue
            if c == "'":
                state = CHR
                i += 1
                continue
            i += 1
            continue
        if state == LINE:
            if c == "\n":
                state = NONE
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == BLOCK:
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = NONE
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
        if state in (STR, CHR):
            quote = '"' if state == STR else "'"
            if c == "\\":
                out[i] = " "
                if nxt and nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = NONE
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == RAWSTR:
            if text.startswith(raw_delim, i):
                for j in range(i, i + len(raw_delim)):
                    out[j] = " "
                i += len(raw_delim)
                state = NONE
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
    return "".join(out)


def match_balanced(text: str, open_idx: int, open_ch: str, close_ch: str) -> int:
    """Index just past the bracket matching text[open_idx]; -1 on failure."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


# ---------------------------------------------------------------------------
# Function-body segmentation (shared by guarded-by and spec-complete rules).
#
# Walk the blanked text tracking braces. `namespace`, `class`, `struct`,
# `enum`, `union` and `extern "C"` open *transparent* scopes we descend into
# (so inline methods are seen individually); any other top-level `{` opens an
# opaque function body captured whole, lambdas and control flow included.
# ---------------------------------------------------------------------------

@dataclass
class FuncBody:
    sig: str          # text from previous ';' / '{' / '}' up to the body '{'
    body: str
    sig_start: int    # offset of sig in file
    body_start: int   # offset of '{' in file
    cls: str          # innermost enclosing class/struct name, or ""


# Between the scope keyword and the name there may be attribute macros:
# `class CAPABILITY("mutex") Mutex`, `class alignas(64) Foo`. The all-caps
# alternative must not eat the first letter of a CamelCase name, hence the
# (?![a-z0-9]) lookahead.
SCOPE_RE = re.compile(
    r"\b(namespace|class|struct|enum|union)\b(?:\s+(?:class|struct))?"
    r"(?:\s+(?:alignas\s*\([^)]*\)|\[\[[^\]]*\]\]"
    r"|[A-Z_]+(?![a-z0-9])(?:\s*\([^)]*\))?))*"
    r"\s*([A-Za-z_]\w*)?")


def segment_functions(code: str) -> list[FuncBody]:
    funcs: list[FuncBody] = []
    scope_stack: list[str | None] = []  # class name, or None for non-class
    i, n = 0, len(code)
    seg_start = 0  # start of the current "declaration segment"
    while i < n:
        c = code[i]
        if c in ";":
            seg_start = i + 1
            i += 1
            continue
        if c == "}":
            if scope_stack:
                scope_stack.pop()
            seg_start = i + 1
            i += 1
            continue
        if c == "{":
            seg = code[seg_start:i]
            m = None
            for sm in SCOPE_RE.finditer(seg):
                m = sm  # last scope keyword in the segment wins
            # A scope keyword makes this brace transparent only when the
            # segment is not a function definition (no parameter list after
            # the scope name — `struct X {` vs `X make_x() {`).
            is_transparent = False
            if m is not None:
                after = seg[m.end():]
                if "(" not in after or after.lstrip().startswith(
                        (":", "final", "{")):
                    is_transparent = True
            if is_transparent:
                kw, name = m.group(1), m.group(2)
                scope_stack.append(name if kw in ("class", "struct", "union")
                                   else None)
                seg_start = i + 1
                i += 1
                continue
            end = match_balanced(code, i, "{", "}")
            if end == -1:
                break
            cls = next((s for s in reversed(scope_stack) if s), "")
            funcs.append(FuncBody(sig=seg, body=code[i:end],
                                  sig_start=seg_start, body_start=i, cls=cls))
            # `void f() { ... } void g() {` — next segment starts after '}'.
            seg_start = end
            i = end
            continue
        i += 1
    return funcs


FUNC_NAME_RE = re.compile(r"(~?[A-Za-z_]\w*)\s*(?:::\s*(~?[A-Za-z_]\w*)\s*)?\($")


MACRO_HEAD_RE = re.compile(r"^[A-Z][A-Z0-9_]{2,}$")


def func_name_of(sig: str) -> tuple[str, str]:
    """(qualifier, name) of the function a signature introduces; best-effort."""
    # First '(' that is not part of an attribute/annotation macro.
    p = sig.find("(")
    while p != -1:
        head = sig[:p].rstrip()
        m = re.search(r"(~?[A-Za-z_]\w*)$", head)
        if m:
            name = m.group(1)
            # ALL-CAPS head = an annotation macro prefixing the declaration
            # (GDUR_HOT_PATH("..."), GDUR_CONFINED("...")): skip past its
            # argument list and keep looking for the real function name.
            if MACRO_HEAD_RE.match(name):
                p = sig.find("(", p + 1)
                continue
            rest = head[:m.start()].rstrip()
            qual = ""
            if rest.endswith("::"):
                qm = re.search(r"([A-Za-z_]\w*)\s*::$", rest)
                if qm:
                    qual = qm.group(1)
            return qual, name
        p = sig.find("(", p + 1)
    return "", ""


# ---------------------------------------------------------------------------
# Per-rule checkers
# ---------------------------------------------------------------------------

def check_patterns(sf: SourceFile, patterns, rule: str, why: str,
                   diags: list[Diag]) -> None:
    for rx, label in patterns:
        for m in rx.finditer(sf.code):
            line = sf.line_of(m.start())
            diags.append(Diag(sf.path, line, rule, f"{label} {why}"))


UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")


def collect_unordered_names(files: list[SourceFile]) -> set[str]:
    """Names of variables/members declared with an unordered container type.

    Declarations in src/live/ are skipped: live-runtime types are not visible
    to the determinism-scoped directories, and their (ordinary) names would
    otherwise shadow deterministic containers elsewhere (e.g. a vector named
    `reads`).
    """
    names: set[str] = set()
    for sf in files:
        if sf.path.startswith("src/live/"):
            continue
        for m in UNORDERED_DECL_RE.finditer(sf.code):
            lt = sf.code.find("<", m.start())
            end = match_balanced(sf.code, lt, "<", ">")
            if end == -1:
                continue
            tail = sf.code[end:end + 160]
            dm = re.match(r"\s*(?:&|\*)?\s*([A-Za-z_]\w*)\s*(?:;|=|\{|GUARDED_BY|\))",
                          tail)
            if dm:
                names.add(dm.group(1))
    return names


FOR_RE = re.compile(r"\bfor\s*\(")


def check_unordered_iter(sf: SourceFile, unordered: set[str],
                         diags: list[Diag]) -> None:
    for m in FOR_RE.finditer(sf.code):
        lp = sf.code.find("(", m.start())
        end = match_balanced(sf.code, lp, "(", ")")
        if end == -1:
            continue
        inner = sf.code[lp + 1:end - 1]
        # Range-for: a top-level ':' that is not '::'.
        depth = 0
        colon = -1
        k = 0
        while k < len(inner):
            ch = inner[k]
            if ch in "(<[":
                depth += 1
            elif ch in ")>]":
                depth -= 1
            elif ch == ":" and depth == 0:
                if k + 1 < len(inner) and inner[k + 1] == ":":
                    k += 2
                    continue
                if k > 0 and inner[k - 1] == ":":
                    k += 1
                    continue
                colon = k
                break
            k += 1
        if colon == -1:
            continue
        expr = inner[colon + 1:].strip()
        tm = re.search(r"([A-Za-z_]\w*)\s*(?:\(\s*\))?\s*$", expr)
        if not tm:
            continue
        tail_name = tm.group(1)
        if tail_name in unordered:
            line = sf.line_of(lp + 1 + colon)
            diags.append(Diag(
                sf.path, line, "determinism/unordered-iter",
                f"range-for over unordered container '{tail_name}': hash order "
                f"is nondeterministic across runs/platforms; iterate a sorted "
                f"copy of the keys or switch to an ordered container"))


def check_hot_path(sf: SourceFile, diags: list[Diag]) -> None:
    for fn in segment_functions(sf.code):
        _qual, name = func_name_of(fn.sig)
        if not name or not HOT_PATH_FN_RE.match(name):
            continue
        for rx, label in HOT_PATH_PATTERNS:
            for m in rx.finditer(fn.body):
                line = sf.line_of(fn.body_start + m.start())
                diags.append(Diag(
                    sf.path, line, "obs/hot-path-alloc",
                    f"{label} inside telemetry hot path {name}(): the record "
                    f"path's contract (obs/stats.h) is one relaxed atomic op "
                    f"— no allocation, no lock, no clock; move the work to "
                    f"the aggregation side or rename the function if it is "
                    f"not a record path"))


def check_dispatch_alloc(sf: SourceFile, diags: list[Diag]) -> None:
    for fn in segment_functions(sf.code):
        _qual, name = func_name_of(fn.sig)
        if not name or not DISPATCH_FN_RE.match(name):
            continue
        for rx, label in DISPATCH_ALLOC_PATTERNS:
            for m in rx.finditer(fn.body):
                line = sf.line_of(fn.body_start + m.start())
                diags.append(Diag(
                    sf.path, line, "front/dispatch-alloc",
                    f"{label} inside reactor demux function {name}(): the "
                    f"wait/re-arm/fan-out path is allocation-free by "
                    f"contract (front/reactor.h); preallocate the buffer or "
                    f"move the work into a per-connection read/write "
                    f"handler"))


# Shard affinity (thread/shard-affinity). Two textual contracts from the
# sharded certification pipeline (DESIGN.md §14):
#   (a) certify functions gate every footprint walk on ctx.owns(obj) so the
#       per-shard sub-votes AND-combine to exactly the serial verdict;
#   (b) per-shard scheduling state stays inside the cluster layer — lanes,
#       shard mailboxes, and shard mutexes are indexed by (site, shard) and
#       are safe only behind the run_certify/run_apply/with_apply_exclusion
#       seam, which owns the deterministic lock order.
CERT_CTX_PARAM_RE = re.compile(r"\bCertContext\s*&\s*([A-Za-z_]\w*)")
FOOTPRINT_WALK_RE_TMPL = r"\b%s\s*\.\s*txn\s*\.\s*(?:ws|reads)\b"
SHARD_STATE_RE = re.compile(
    r"\b(lane_free_|shard_mailboxes_|shard_mu_|shard_threads_)\b")
SHARD_STATE_OWNERS = ("src/core/cluster.h", "src/core/cluster.cpp",
                      "src/live/live_cluster.h", "src/live/live_cluster.cpp")


def check_shard_affinity(sf: SourceFile, diags: list[Diag]) -> None:
    for fn in segment_functions(sf.code):
        pm = CERT_CTX_PARAM_RE.search(fn.sig)
        if not pm:
            continue
        p = pm.group(1)
        foot = re.search(FOOTPRINT_WALK_RE_TMPL % re.escape(p), fn.body)
        if not foot:
            continue
        if re.search(r"\b" + re.escape(p) + r"\s*\.\s*owns\s*\(", fn.body):
            continue
        _qual, name = func_name_of(fn.sig)
        line = sf.line_of(fn.body_start + foot.start())
        diags.append(Diag(
            sf.path, line, "thread/shard-affinity",
            f"certifier {name or '<certify fn>'}() walks the transaction "
            f"footprint without gating on {p}.owns(obj): under "
            f"shards_per_site > 1 every shard re-judges the full footprint "
            f"and the sub-votes no longer AND-combine to the serial verdict; "
            f"skip foreign slices with 'if (!{p}.owns(o)) continue;'"))
    if sf.path not in SHARD_STATE_OWNERS:
        for m in SHARD_STATE_RE.finditer(sf.code):
            line = sf.line_of(m.start())
            diags.append(Diag(
                sf.path, line, "thread/shard-affinity",
                f"'{m.group(1)}' is per-shard scheduling state owned by the "
                f"cluster layer (core/cluster.*, live/live_cluster.*); other "
                f"code must route through run_certify()/run_apply()/"
                f"with_apply_exclusion(), which own the deterministic shard "
                f"lock order"))


def check_hardcoded_sites(sf: SourceFile, diags: list[Diag]) -> None:
    for m in HARDCODED_SITES_RE.finditer(sf.code):
        line = sf.line_of(m.start())
        diags.append(Diag(
            sf.path, line, "membership/hardcoded-sites",
            "loop over the whole site universe: destinations and quorums "
            "must flow through the MembershipView of the transaction's "
            "epoch (view(e).members / view(e).filter(...)), or the loop "
            "includes retired sites and misses joiners; if it is genuinely "
            "membership-independent, allow() it with the reason"))


SPEC_FN_RE = re.compile(r"\bProtocolSpec\b")
FRESH_SPEC_RE = re.compile(r"\b(?:core\s*::\s*)?ProtocolSpec\s+([A-Za-z_]\w*)\s*;")
INHERIT_RE = re.compile(r"\bauto\s+([A-Za-z_]\w*)\s*=\s*[A-Za-z_][\w:]*\s*\(")


def check_spec_complete(sf: SourceFile, diags: list[Diag]) -> None:
    for fn in segment_functions(sf.code):
        if not SPEC_FN_RE.search(fn.sig):
            continue  # not a ProtocolSpec-returning factory
        fresh = FRESH_SPEC_RE.search(fn.body)
        if fresh is None:
            continue  # inherits a named default (auto s = base();) or returns
        if INHERIT_RE.search(fn.body):
            # Mixed style: fresh decl *and* inheritance — still require the
            # fresh spec to be complete; fall through.
            pass
        var = fresh.group(1)
        assigned = set(re.findall(
            r"\b" + re.escape(var) + r"\s*\.\s*([A-Za-z_]\w*)\s*=", fn.body))
        missing = [p for p in SPEC_POINTS if p not in assigned]
        if missing:
            _, name = func_name_of(fn.sig)
            line = sf.line_of(fn.body_start + fresh.start())
            diags.append(Diag(
                sf.path, line, "protocol/spec-complete",
                f"ProtocolSpec '{var}' in {name or 'factory'}() leaves "
                f"realization point(s) {', '.join(missing)} at their silent "
                f"defaults; assign each explicitly or inherit a named default "
                f"with 'auto {var} = <base>();'"))


GUARDED_DECL_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)?GUARDED_BY\s*\(([^)]*)\)")
REQUIRES_RE = re.compile(r"\bREQUIRES(?:_SHARED)?\s*\(([^)]*)\)")


def last_ident(expr: str) -> str:
    ids = re.findall(r"[A-Za-z_]\w*", expr)
    return ids[-1] if ids else ""


@dataclass
class GuardedVar:
    name: str
    mu: str
    cls: str   # declaring class ("" for namespace scope)


def collect_guarded(sf: SourceFile) -> list[GuardedVar]:
    out = []
    scope_stack: list[str | None] = []
    i, n = 0, len(sf.code)
    seg_start = 0
    decls = [(m.start(), m.group(1), last_ident(m.group(2)))
             for m in GUARDED_DECL_RE.finditer(sf.code)]
    if not decls:
        return out
    # Class attribution: walk scopes the same way segment_functions does.
    pos_cls: dict[int, str] = {}
    idx = 0
    while i < n and idx < len(decls):
        c = sf.code[i]
        if c == ";":
            seg_start = i + 1
        elif c == "}":
            if scope_stack:
                scope_stack.pop()
            seg_start = i + 1
        elif c == "{":
            seg = sf.code[seg_start:i]
            m = None
            for sm in SCOPE_RE.finditer(seg):
                m = sm
            is_transparent = False
            if m is not None:
                after = seg[m.end():]
                if "(" not in after or after.lstrip().startswith(
                        (":", "final", "{")):
                    is_transparent = True
            if is_transparent:
                kw, name = m.group(1), m.group(2)
                scope_stack.append(name if kw in ("class", "struct", "union")
                                   else None)
                seg_start = i + 1
            else:
                end = match_balanced(sf.code, i, "{", "}")
                if end == -1:
                    break
                while idx < len(decls) and decls[idx][0] < end:
                    off, nm, mu = decls[idx]
                    if off >= i:  # decl inside a function body: local static
                        cls = next((s for s in reversed(scope_stack) if s), "")
                        pos_cls[off] = cls
                    idx += 1
                i = end
                seg_start = end
                continue
        while idx < len(decls) and decls[idx][0] <= i:
            off, nm, mu = decls[idx]
            cls = next((s for s in reversed(scope_stack) if s), "")
            pos_cls[off] = cls
            idx += 1
        i += 1
    for off, nm, mu in decls:
        cls = pos_cls.get(off, next((s for s in reversed(scope_stack) if s), ""))
        out.append(GuardedVar(name=nm, mu=mu, cls=cls))
    return out


def collect_requires_decls(files: list[SourceFile]) -> dict[str, set[str]]:
    """Method name -> mutexes from REQUIRES(...) on any declaration.

    Out-of-line definitions in a .cpp rarely repeat the REQUIRES() that the
    header declaration carries, so the lockset check honors the annotation
    wherever it appears.
    """
    req: dict[str, set[str]] = {}
    for sf in files:
        for m in re.finditer(
                r"([A-Za-z_]\w*)\s*\([^;{}]*\)[^;{}]*?REQUIRES(?:_SHARED)?"
                r"\s*\(([^)]*)\)", sf.code):
            name = m.group(1)
            mus = {last_ident(p) for p in m.group(2).split(",") if p.strip()}
            req.setdefault(name, set()).update(mus)
    return req


def lock_held_in(body: str, mu: str) -> bool:
    """Does the body take a MutexLock (or adopt one) on `mu`?"""
    if re.search(r"\bMutexLock\s+\w+\s*\(\s*&[\w.\->]*\b" + re.escape(mu)
                 + r"\b\s*\)", body):
        return True
    # CondVar::wait(lock) predicates annotated REQUIRES(mu) inside a locked
    # body are covered by the body-level check above.
    return False


def check_guarded_by(sf: SourceFile, guarded: list[GuardedVar],
                     requires_map: dict[str, set[str]],
                     diags: list[Diag]) -> None:
    if not guarded:
        return
    by_cls: dict[str, list[GuardedVar]] = {}
    for g in guarded:
        by_cls.setdefault(g.cls, []).append(g)
    for fn in segment_functions(sf.code):
        if "NO_THREAD_SAFETY_ANALYSIS" in fn.sig:
            continue
        qual, name = func_name_of(fn.sig)
        cls = qual or fn.cls
        # Constructors/destructors: the object is not yet (no longer) shared.
        if name and (name.startswith("~") or name == cls):
            continue
        sig_req = {last_ident(p)
                   for m in REQUIRES_RE.finditer(fn.sig)
                   for p in m.group(1).split(",") if p.strip()}
        decl_req = requires_map.get(name, set())
        # Candidate guarded vars: same class, or namespace-scope ones.
        cands = by_cls.get(cls, []) + by_cls.get("", [])
        for g in cands:
            m = re.search(r"(?<![.\w])(?:this\s*->\s*)?" + re.escape(g.name)
                          + r"\b", fn.body)
            if not m:
                continue
            if g.mu in sig_req or g.mu in decl_req:
                continue
            if lock_held_in(fn.body, g.mu):
                continue
            line = sf.line_of(fn.body_start + m.start())
            diags.append(Diag(
                sf.path, line, "thread/guarded-by",
                f"'{g.name}' is GUARDED_BY({g.mu}) but "
                f"{cls + '::' if cls else ''}{name or '<function>'} touches it "
                f"with no MutexLock({g.mu}) in scope and no REQUIRES({g.mu}) "
                f"annotation"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def norm(path: str) -> str:
    return path.replace(os.sep, "/")


def in_scope_wallclock(path: str) -> bool:
    return (path.startswith("src/")
            and not path.startswith(("src/live/", "src/front/")))


def in_scope_unordered(path: str) -> bool:
    return path.startswith(UNORDERED_DIRS)


def in_scope_blocking(path: str) -> bool:
    if (path.startswith("src/live/")
            and os.path.basename(path) != "event_loop.cpp"):
        return True
    # Front-door dispatch path: everything under src/front/ except the
    # reactor (its wait owns blocking), the client library (client-side code
    # blocks by design) and signals.cpp (interruptible_sleep).
    return (path.startswith("src/front/")
            and os.path.basename(path) not in (
                "reactor.cpp", "client.cpp", "client.h", "signals.cpp"))


def in_scope_dispatch(path: str) -> bool:
    return path == "src/front/reactor.cpp"


def in_scope_spec(path: str) -> bool:
    return path.startswith("src/protocols/") and path.endswith(".cpp")


def in_scope_membership(path: str) -> bool:
    return path.startswith(MEMBERSHIP_DIRS)


def in_scope_hot_path(path: str) -> bool:
    return path.startswith("src/obs/")


def in_scope_shard(path: str) -> bool:
    return path.startswith(("src/core/", "src/protocols/", "src/live/"))


def run_rules(files: list[SourceFile],
              check_allows: bool = False) -> list[Diag]:
    diags: list[Diag] = []
    unordered = collect_unordered_names(files)
    requires_map = collect_requires_decls(files)
    # Guarded vars are checked in the declaring unit (same basename stem):
    # header decls are enforced in the sibling .cpp and vice versa.
    guarded_by_unit: dict[str, list[GuardedVar]] = {}
    for sf in files:
        unit = norm(os.path.splitext(sf.path)[0])
        guarded_by_unit.setdefault(unit, []).extend(collect_guarded(sf))
    for sf in files:
        if in_scope_wallclock(sf.path):
            check_patterns(
                sf, WALLCLOCK_PATTERNS, "determinism/wallclock",
                "reads ambient entropy/time: the simulator must be a pure "
                "function of (seed, config); take the value from SimTime/Rng "
                "or move the code under src/live/", diags)
        if in_scope_unordered(sf.path):
            check_unordered_iter(sf, unordered, diags)
        if in_scope_blocking(sf.path):
            check_patterns(
                sf, BLOCKING_PATTERNS, "live/blocking-call",
                "can block the event-loop thread; only event_loop.cpp may "
                "block (in poll())", diags)
        if in_scope_dispatch(sf.path):
            check_dispatch_alloc(sf, diags)
        if in_scope_spec(sf.path):
            check_spec_complete(sf, diags)
        if in_scope_membership(sf.path):
            check_hardcoded_sites(sf, diags)
        if in_scope_hot_path(sf.path):
            check_hot_path(sf, diags)
        if in_scope_shard(sf.path):
            check_shard_affinity(sf, diags)
        unit = norm(os.path.splitext(sf.path)[0])
        check_guarded_by(sf, guarded_by_unit.get(unit, []), requires_map,
                         diags)
    # Apply allow comments, then surface malformed ones.
    out: list[Diag] = []
    used_allows: set[tuple[str, int]] = set()
    by_file = {sf.path: sf for sf in files}
    for d in sorted(diags, key=lambda d: (d.path, d.line, d.rule)):
        sf = by_file[d.path]
        suppressed = False
        for ln in (d.line, d.line - 1):
            entry = sf.allows.get(ln)
            if entry and d.rule in entry[0] and entry[1]:
                suppressed = True
                used_allows.add((sf.path, ln))
                break
        if not suppressed:
            out.append(d)
    for sf in files:
        for ln in sf.bad_allows:
            rules, reason = sf.allows[ln]
            if not reason:
                out.append(Diag(sf.path, ln, "lint/bad-allow",
                                "allow() without a reason; write "
                                "'// gdur-lint: allow(rule) why it is safe'"))
            for r in rules:
                if r not in RULES:
                    out.append(Diag(sf.path, ln, "lint/bad-allow",
                                    f"allow() names unknown rule '{r}'"))
    if check_allows:
        # Stale suppressions: a well-formed allow that matched no diagnostic
        # this run. Bad allows are already reported above; skip them.
        for sf in files:
            for ln, (rules, _reason) in sorted(sf.allows.items()):
                if ln in sf.bad_allows or (sf.path, ln) in used_allows:
                    continue
                out.append(Diag(
                    sf.path, ln, "lint/stale-allow",
                    f"allow({', '.join(rules)}) suppressed nothing — the "
                    f"rule no longer fires on the next line; delete the "
                    f"comment so it cannot silently mask a future "
                    f"regression elsewhere in the function"))
    out.sort(key=lambda d: (d.path, d.line, d.rule))
    return out


def load_tree(root: str) -> list[SourceFile]:
    files = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for fname in sorted(filenames):
            if not fname.endswith((".h", ".cpp", ".hpp", ".cc")):
                continue
            full = os.path.join(dirpath, fname)
            rel = norm(os.path.relpath(full, root))
            with open(full, encoding="utf-8") as f:
                files.append(SourceFile(path=rel, raw=f.read()))
    files.sort(key=lambda sf: sf.path)
    return files


def check_compile_commands(root: str, db_path: str,
                           files: list[SourceFile]) -> list[Diag]:
    try:
        with open(db_path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as e:
        return [Diag(norm(os.path.relpath(db_path, root)), 1,
                     "build/untracked-tu",
                     f"cannot read compile_commands.json: {e}")]
    compiled = set()
    for e in entries:
        p = e.get("file", "")
        if not os.path.isabs(p):
            p = os.path.join(e.get("directory", ""), p)
        compiled.add(norm(os.path.normpath(p)))
    diags = []
    for sf in files:
        if not sf.path.endswith((".cpp", ".cc")):
            continue
        full = norm(os.path.normpath(os.path.join(root, sf.path)))
        if full not in compiled:
            diags.append(Diag(sf.path, 1, "build/untracked-tu",
                              "translation unit missing from "
                              "compile_commands.json — is the build glob "
                              "stale? re-run cmake"))
    return diags


def self_test(corpus_dir: str) -> int:
    failures = 0
    cases = []
    for sub in ("good", "bad"):
        d = os.path.join(corpus_dir, sub)
        if not os.path.isdir(d):
            continue
        for fname in sorted(os.listdir(d)):
            if fname.endswith((".cpp", ".h")):
                cases.append((sub, os.path.join(d, fname)))
    if not cases:
        print(f"gdur-lint self-test: no corpus under {corpus_dir}",
              file=sys.stderr)
        return 1
    for sub, full in cases:
        with open(full, encoding="utf-8") as f:
            raw = f.read()
        m = LINT_AS_RE.search(raw)
        lint_path = m.group(1) if m else "src/core/" + os.path.basename(full)
        sf = SourceFile(path=lint_path, raw=raw)
        got = {(d.line, d.rule) for d in run_rules([sf], check_allows=True)}
        want = set()
        if sub == "bad":
            for i, line in enumerate(raw.splitlines(), start=1):
                for em in EXPECT_RE.finditer(line):
                    want.add((i, em.group(1)))
        if got != want:
            failures += 1
            print(f"SELF-TEST FAIL {full} (as {lint_path})")
            for line, rule in sorted(want - got):
                print(f"  missing: line {line}: {rule}")
            for line, rule in sorted(got - want):
                print(f"  spurious: line {line}: {rule}")
        else:
            print(f"self-test ok: {sub}/{os.path.basename(full)} "
                  f"({len(want)} expected diagnostic(s))")
    if failures:
        print(f"gdur-lint self-test: {failures}/{len(cases)} case(s) failed")
        return 1
    print(f"gdur-lint self-test: all {len(cases)} case(s) passed")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="gdur-lint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels above this "
                         "script)")
    ap.add_argument("--compile-commands", default=None,
                    help="path to compile_commands.json; every src/ TU must "
                         "appear in it")
    ap.add_argument("--self-test", action="store_true",
                    help="run the rules over tools/gdur_lint/corpus/ and "
                         "verify expected diagnostics")
    ap.add_argument("--check-allows", action="store_true",
                    help="also report allow() comments that suppressed "
                         "nothing (lint/stale-allow)")
    args = ap.parse_args(argv)

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root) if args.root else \
        os.path.dirname(os.path.dirname(here))

    if args.self_test:
        return self_test(os.path.join(here, "corpus"))

    files = load_tree(root)
    if not files:
        print(f"gdur-lint: no sources under {root}/src", file=sys.stderr)
        return 2
    diags = run_rules(files, check_allows=args.check_allows)
    if args.compile_commands:
        diags += check_compile_commands(root, args.compile_commands, files)
        diags.sort(key=lambda d: (d.path, d.line, d.rule))
    for d in diags:
        print(f"{d.path}:{d.line}: {d.rule}: {d.msg}")
    if diags:
        print(f"gdur-lint: {len(diags)} diagnostic(s)", file=sys.stderr)
        return 1
    print(f"gdur-lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

// lint-as: src/core/stale_allow.cpp
//
// Lint fixture (never compiled): a well-formed allow() whose rule no longer
// fires on the line it guards — dead weight that would silently mask a
// future regression. Reported only under --check-allows (the self-test and
// the tree gate both run with it).

#include <vector>

namespace gdur::corpus {

struct Registry {
  std::vector<int> decided_;  // ordered now; the allow below outlived the fix

  int count_all() const {
    int n = 0;
    // gdur-lint: allow(determinism/unordered-iter) decided_ used to be an unordered_set  // expect: lint/stale-allow
    for (int id : decided_) ++n;
    return n;
  }
};

}  // namespace gdur::corpus

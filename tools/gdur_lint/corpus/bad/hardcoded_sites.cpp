// lint-as: src/core/hardcoded_sites.cpp
//
// Lint fixture (never compiled): counter loops over the whole site universe
// bypass the MembershipView — they include retired sites and miss joiners.
// One bootstrap loop is legitimately allowed with a reason.

namespace gdur::corpus {

void broadcast_votes(Cluster& cl, const TxnRecord& t) {
  for (SiteId s = 0; s < static_cast<SiteId>(cl.sites()); ++s)  // expect: membership/hardcoded-sites
    cl.send_vote(0, s, t, true);
}

void count_quorum(int n_sites, const std::vector<bool>& acks) {
  int yes = 0;
  for (int s = 0; s < n_sites; ++s)  // expect: membership/hardcoded-sites
    yes += acks[static_cast<std::size_t>(s)] ? 1 : 0;
  (void)yes;
}

void fan_out(Transport& net, std::uint64_t bytes) {
  for (auto d = 0; d < net.sites(); ++d)  // expect: membership/hardcoded-sites
    net.send(0, d, bytes, [] {});
}

void bootstrap(const ClusterConfig& cfg, std::vector<ReplicaPtr>& replicas) {
  // gdur-lint: allow(membership/hardcoded-sites) bootstrap constructs one replica per universe site; membership fences participation
  for (SiteId s = 0; s < static_cast<SiteId>(cfg.sites); ++s)
    replicas.push_back(make_replica(s));
}

void view_driven(Cluster& cl, const TxnRecord& t) {
  // The right shape: iterate the agreed view of the transaction's epoch.
  for (SiteId s : cl.view(t.epoch).members) cl.send_vote(0, s, t, true);
}

}  // namespace gdur::corpus

// lint-as: src/core/unordered_iter.cpp
//
// Lint fixture (never compiled): hash-order iteration feeding observable
// state, plus the two malformed allow-comment shapes.

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gdur::corpus {

struct Term {
  std::unordered_map<int, int> pending_;
  std::unordered_set<int> decided_;

  // Direct iteration: the emission order depends on the hash seed.
  void emit(std::vector<int>& out) const {
    for (const auto& [id, v] : pending_) out.push_back(id);  // expect: determinism/unordered-iter
  }

  // An allow() without a reason is itself an error and does not suppress.
  int count_all() const {
    int n = 0;
    // gdur-lint: allow(determinism/unordered-iter)  // expect: lint/bad-allow
    for (int id : decided_) ++n;  // expect: determinism/unordered-iter
    return n;
  }
};

}  // namespace gdur::corpus

// lint-as: src/front/reactor.cpp
//
// Lint fixture (never compiled): allocation inside the reactor demux
// functions (front/dispatch-alloc). The wait / interest re-arm / readiness
// fan-out path is allocation-free by contract (front/reactor.h); run_poll
// is exempt because the portable fallback rebuilds its interest vectors
// every iteration with retained capacity.

#include <memory>
#include <string>
#include <vector>

namespace gdur::corpus {

struct Reactor {
  std::vector<int> ready_;

  void run_epoll() {
    for (;;) {
      ready_.push_back(7);  // expect: front/dispatch-alloc
      auto* leak = new int(7);  // expect: front/dispatch-alloc
      (void)leak;
    }
  }

  void drain_control() {
    std::string label = "task";  // expect: front/dispatch-alloc
    (void)label;
  }

  void update_interest(int conn_id) {
    auto state = std::make_unique<int>(conn_id);  // expect: front/dispatch-alloc
    (void)state;
  }

  // The poll() fallback may grow its scratch vectors: capacity is retained
  // across iterations, so growth amortizes to zero.
  void run_poll() {
    ready_.clear();
    ready_.push_back(7);
  }

  // Per-connection read handlers own buffer growth.
  void handle_readable(std::vector<int>& in) { in.push_back(7); }
};

}  // namespace gdur::corpus

// lint-as: src/core/unknown_allow.cpp
//
// Lint fixture (never compiled): an allow() naming a rule that does not
// exist — usually a typo that would silently suppress nothing forever.

namespace gdur::corpus {

// gdur-lint: allow(determinism/unordered-iteration) typo'd rule id  // expect: lint/bad-allow
int answer() { return 42; }

}  // namespace gdur::corpus

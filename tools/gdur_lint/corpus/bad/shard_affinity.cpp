// lint-as: src/core/shard_affinity.cpp
//
// Lint fixture (never compiled): the sharded-certification contracts.
// One certifier walks the transaction footprint without the owns() gate —
// under shards_per_site > 1 every shard would re-judge the full footprint,
// so the per-shard sub-votes stop AND-combining to the serial verdict. A
// helper below also pokes lane state that only the cluster layer owns.

namespace gdur::corpus {

bool ungated_certifier(const CertContext& ctx) {
  for (ObjectId o : ctx.txn.ws) {  // expect: thread/shard-affinity
    if (latest_seq_of(o) > ctx.txn.snap.start_seq) return false;
  }
  return true;
}

bool gated_certifier(const CertContext& ctx) {
  for (ObjectId o : ctx.txn.ws) {
    if (!ctx.owns(o)) continue;  // shard sub-vote: not my slice
    if (latest_seq_of(o) > ctx.txn.snap.start_seq) return false;
  }
  return true;
}

bool no_footprint(const CertContext& ctx) {
  // Constant verdict: nothing per-object to slice, no gate required.
  return ctx.txn.snap.start_seq >= 0;
}

void poke_lane(int site, int shard) {
  lane_free_[site * 4 + shard] = 0;  // expect: thread/shard-affinity
}

void dump_lane(int site) {
  // gdur-lint: allow(thread/shard-affinity) read-only diagnostic dump; scheduling decisions still flow through run_certify
  print_lane(lane_free_[site]);
}

}  // namespace gdur::corpus

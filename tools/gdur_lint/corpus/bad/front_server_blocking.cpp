// lint-as: src/front/server.cpp
//
// Lint fixture (never compiled): blocking the front-door dispatch path.
// FrontServer handlers run on the site mailbox thread — a sleep or blocking
// syscall there stalls the whole replica, not just one client.

#include <chrono>
#include <thread>
#include <unistd.h>

namespace gdur::corpus {

void handle_req(int fd) {
  char buf[64];
  // Reading the socket directly would block the site thread; bytes arrive
  // through the reactor's frame handler instead.
  ::read(fd, buf, sizeof buf);  // expect: live/blocking-call
  // "Wait for the certifier to catch up" must be pushback, never a sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // expect: live/blocking-call
}

}  // namespace gdur::corpus

// lint-as: src/obs/bad_stats.h
//
// Lint fixture (never compiled): telemetry hot paths (record/record_*/
// append/poke) that violate the record-path contract — allocation, locking,
// container growth, or a clock read. One aggregation-side function shows
// the same constructs are fine outside hot-path names, and one allow()
// documents a reviewed exception.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gdur::corpus {

class BadSlot {
 public:
  void record(std::uint64_t v) {
    samples_.push_back(v);  // expect: obs/hot-path-alloc
  }

  void record_value(std::uint64_t v) {
    MutexLock lock(&mu_);  // expect: obs/hot-path-alloc
    total_ += v;
  }

  void append(const char* name, std::uint64_t ts) {
    labels_.push_back(std::string(name));  // expect: obs/hot-path-alloc
    last_ts_ = ts != 0 ? ts : now();  // expect: obs/hot-path-alloc
  }

  void poke() {
    auto* cell = new std::uint64_t(0);  // expect: obs/hot-path-alloc
    *cell = 1;
  }

  /// Aggregation side: snapshots may allocate and lock freely.
  std::vector<std::uint64_t> snapshot() const {
    std::vector<std::uint64_t> out;
    out.push_back(total_);
    return out;
  }

  /// Reviewed exception: a cold-path append wired through a hot-path name.
  void record_cold(std::uint64_t v) {
    // gdur-lint: allow(obs/hot-path-alloc) one-time registration at startup, never on the record path
    samples_.push_back(v);
  }

 private:
  [[nodiscard]] std::uint64_t now() const { return 0; }

  int mu_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t last_ts_ = 0;
  std::vector<std::uint64_t> samples_;
  std::vector<std::string> labels_;
};

}  // namespace gdur::corpus

// lint-as: src/sim/wallclock.cpp
//
// Lint fixture (never compiled): ambient time/entropy inside the simulator.
// Every run would see different values — the trace would no longer be a pure
// function of (seed, config).

#include <chrono>
#include <cstdlib>
#include <random>

namespace gdur::corpus {

double now_seconds() {
  auto t = std::chrono::steady_clock::now();  // expect: determinism/wallclock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

std::uint64_t bad_seed() {
  std::random_device rd;  // expect: determinism/wallclock
  return rd() + static_cast<std::uint64_t>(rand());  // expect: determinism/wallclock
}

std::int64_t wall_ms() {
  using std::chrono::system_clock;  // expect: determinism/wallclock
  return 0;
}

// Strings and comments never fire: "steady_clock" / rand() in prose is fine.
const char* kDoc = "uses steady_clock internally";

}  // namespace gdur::corpus

// lint-as: src/live/blocking_call.cpp
//
// Lint fixture (never compiled): blocking the event-loop thread outside
// event_loop.cpp. One site is legitimately allowed with a reason.

#include <chrono>
#include <thread>
#include <unistd.h>

namespace gdur::corpus {

void handler(int fd) {
  char buf[64];
  // A handler runs on the loop thread; a blocking read stalls every site.
  ::read(fd, buf, sizeof buf);  // expect: live/blocking-call
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // expect: live/blocking-call
}

void sender(int fd) {
  char buf[64];
  // The send side blocks too once the socket buffer fills — a peer that
  // stops reading would wedge the mailbox thread mid-dispatch.
  ::send(fd, buf, sizeof buf, 0);      // expect: live/blocking-call
  ::sendto(fd, buf, sizeof buf, 0, nullptr, 0);   // expect: live/blocking-call
  ::sendmsg(fd, nullptr, 0);           // expect: live/blocking-call
  ::recvmsg(fd, nullptr, 0);           // expect: live/blocking-call
  ::recvfrom(fd, buf, sizeof buf, 0, nullptr, nullptr);  // expect: live/blocking-call
}

void pacing(int fd) {
  fd_set fds;
  timespec ts{0, 1000};
  // Multiplexing waits belong to the loop; ad-hoc waits stall it.
  ::poll(nullptr, 0, 10);              // expect: live/blocking-call
  ::select(fd + 1, &fds, nullptr, nullptr, nullptr);  // expect: live/blocking-call
  usleep(100);                         // expect: live/blocking-call
  nanosleep(&ts, nullptr);             // expect: live/blocking-call
}

void setup(int fd) {
  char buf[4];
  // gdur-lint: allow(live/blocking-call) setup runs on the caller's thread, before the loop starts
  ::read(fd, buf, sizeof buf);
}

}  // namespace gdur::corpus

// lint-as: src/live/blocking_call.cpp
//
// Lint fixture (never compiled): blocking the event-loop thread outside
// event_loop.cpp. One site is legitimately allowed with a reason.

#include <chrono>
#include <thread>
#include <unistd.h>

namespace gdur::corpus {

void handler(int fd) {
  char buf[64];
  // A handler runs on the loop thread; a blocking read stalls every site.
  ::read(fd, buf, sizeof buf);  // expect: live/blocking-call
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // expect: live/blocking-call
}

void setup(int fd) {
  char buf[4];
  // gdur-lint: allow(live/blocking-call) setup runs on the caller's thread, before the loop starts
  ::read(fd, buf, sizeof buf);
}

}  // namespace gdur::corpus

// lint-as: src/live/guarded_unlocked.cpp
//
// Lint fixture (never compiled): GUARDED_BY fields touched without the
// mutex. The portable lockset rule must catch this even when the compiler
// (GCC) ignores the thread-safety attributes.

#include <cstdint>
#include <deque>

namespace gdur::corpus {

class Leaky {
 public:
  void push(int v) {
    MutexLock lock(&mu_);
    q_.push_back(v);
  }

  // Forgot the lock entirely.
  int peek() const {
    return q_.front();  // expect: thread/guarded-by
  }

  // Locked the wrong mutex.
  std::uint64_t count() const {
    MutexLock lock(&other_mu_);
    return pushed_;  // expect: thread/guarded-by
  }

 private:
  mutable Mutex mu_;
  mutable Mutex other_mu_;
  std::deque<int> q_ GUARDED_BY(mu_);
  std::uint64_t pushed_ GUARDED_BY(mu_) = 0;
};

}  // namespace gdur::corpus

// lint-as: src/protocols/spec_incomplete.cpp
//
// Lint fixture (never compiled): a fresh ProtocolSpec that leaves realization
// points at their silent defaults — exactly the drift the paper's plug-in
// table is meant to prevent.

namespace gdur::protocols {

core::ProtocolSpec halfway() {
  core::ProtocolSpec s;  // expect: protocol/spec-complete
  s.name = "Halfway";
  s.theta = versioning::VersioningKind::kTS;
  s.ac = core::AcKind::kTwoPhaseCommit;
  s.certify = core::certifiers::always;
  // choose, xcast, certifying, vote_snd, vote_recv, commute: defaulted.
  return s;
}

}  // namespace gdur::protocols

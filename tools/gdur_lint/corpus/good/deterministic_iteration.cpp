// lint-as: src/core/deterministic_iteration.cpp
//
// Lint fixture (never compiled): the approved patterns for iterating an
// unordered container inside the determinism-scoped directories.

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace gdur::corpus {

struct Registry {
  std::unordered_map<int, double> weights_;
  std::map<int, double> ordered_;

  // Pattern 1: harvest the keys (allowed with a reason), sort, then walk the
  // sorted copy — the only hash-order dependence is the harvest itself.
  double sum_sorted() const {
    std::vector<int> keys;
    keys.reserve(weights_.size());
    // gdur-lint: allow(determinism/unordered-iter) key harvest only; sorted before any side effect
    for (const auto& [k, v] : weights_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    double sum = 0;
    for (int k : keys) sum += weights_.find(k)->second;
    return sum;
  }

  // Pattern 2: an ordered container iterates freely.
  double sum_ordered() const {
    double sum = 0;
    for (const auto& [k, v] : ordered_) sum += v;
    return sum;
  }

  // Point lookups into the unordered container are always fine.
  double at(int k) const { return weights_.find(k)->second; }
};

}  // namespace gdur::corpus

// lint-as: src/live/member_send_poll.cpp
//
// Lint fixture (never compiled): identifiers and member calls that merely
// *look* like the blocking syscalls. The patterns anchor on the `::` scope
// qualifier (and reject a preceding `.`), so an in-process mailbox `send`,
// a non-blocking edge `poll()` on an object, or a variable named
// `usleep_budget` must not fire live/blocking-call.

namespace gdur::corpus {

struct Mailbox {
  void send(int) {}       // in-process post, never blocks
  bool poll() { return false; }  // non-blocking readiness probe
  int recvmsg_count = 0;  // counter, not the syscall
};

struct Wheel {
  int usleep_budget = 0;  // identifier containing a pattern name
  void select(int) {}     // overload resolution test, not ::select
};

void pump(Mailbox& mb, Wheel& w) {
  mb.send(1);
  if (mb.poll()) ++mb.recvmsg_count;
  w.select(2);
  w.usleep_budget += 1;
}

}  // namespace gdur::corpus

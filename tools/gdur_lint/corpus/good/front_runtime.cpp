// lint-as: src/front/client.cpp
//
// Lint fixture (never compiled): the front-door exemptions. Client-side
// library code reads real clocks (determinism/wallclock stops at src/front/
// just like src/live/) and blocks by design — a synchronous client API is
// supposed to wait on its socket.

#include <chrono>
#include <thread>
#include <unistd.h>

namespace gdur::corpus {

double wait_for_response(int fd) {
  const auto t0 = std::chrono::steady_clock::now();
  char buf[64];
  ::read(fd, buf, sizeof buf);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace gdur::corpus

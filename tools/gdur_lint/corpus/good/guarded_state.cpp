// lint-as: src/live/guarded_state.cpp
//
// Lint fixture (never compiled): a shared-state class whose every guarded
// access either holds a MutexLock or is annotated REQUIRES.

#include <cstdint>
#include <deque>

namespace gdur::corpus {

class Queue {
 public:
  void push(int v) {
    MutexLock lock(&mu_);
    q_.push_back(v);
    ++pushed_;
  }

  int pop() {
    MutexLock lock(&mu_);
    const int v = q_.front();
    q_.pop_front();
    return v;
  }

  std::uint64_t pushed() const {
    MutexLock lock(&mu_);
    return pushed_;
  }

 private:
  // Private helper called with the mutex already held by the caller.
  bool drained() const REQUIRES(mu_) { return q_.empty(); }

  mutable Mutex mu_;
  std::deque<int> q_ GUARDED_BY(mu_);
  std::uint64_t pushed_ GUARDED_BY(mu_) = 0;
};

}  // namespace gdur::corpus

// lint-as: src/protocols/spec_complete.cpp
//
// Lint fixture (never compiled): the two approved ways to build a
// ProtocolSpec — pin every realization point, or inherit a named default.

namespace gdur::protocols {

// A fresh spec assigns all ten realization points of the plug-in table.
core::ProtocolSpec complete() {
  core::ProtocolSpec s;
  s.name = "Complete";
  s.theta = versioning::VersioningKind::kTS;
  s.choose = core::ChooseKind::kCons;
  s.ac = core::AcKind::kTwoPhaseCommit;
  s.xcast = core::XcastKind::kAtomicMulticast;
  s.certifying = core::CertScope::kWriteSet;
  s.vote_snd = core::VoteScope::kCertifying;
  s.vote_recv = core::VoteScope::kWriteSet;
  s.commute = core::commute_always;
  s.certify = core::certifiers::always;
  return s;
}

// A derived spec inherits a named default and overrides selectively.
core::ProtocolSpec complete_paxos() {
  auto s = complete();
  s.name = "Complete+Paxos";
  s.ac = core::AcKind::kPaxosCommit;
  return s;
}

}  // namespace gdur::protocols

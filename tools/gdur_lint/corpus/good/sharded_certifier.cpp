// lint-as: src/core/sharded_certifier.cpp
//
// Lint fixture (never compiled): a shard-clean certifier. Every footprint
// walk is gated on ctx.owns(), so each shard's sub-vote judges exactly its
// own slice and the AND of the sub-votes equals the serial verdict.

namespace gdur::corpus {

bool reads_then_writes(const CertContext& ctx) {
  for (const ReadEntry& r : ctx.txn.reads) {
    if (!ctx.owns(r.obj)) continue;  // shard sub-vote: not my slice
    if (latest_pidx(r.obj) != r.pidx) return false;
  }
  for (ObjectId o : ctx.txn.ws) {
    if (!ctx.owns(o)) continue;  // shard sub-vote: not my slice
    if (latest_seq_of(o) > ctx.txn.snap.start_seq) return false;
  }
  return true;
}

}  // namespace gdur::corpus

#!/usr/bin/env python3
"""Corpus self-test and tree runner for gdur-analyze.

Corpus mode (default): every fixture under corpus/bad/ must produce each
check named in its `// expect:` headers (exit 1), and every fixture under
corpus/good/ must come back clean (exit 0, no warnings). Fixtures are
freestanding — their only include is src/common/analysis_annotations.h —
so no system header path is required.

Tree mode (--tree): runs the tool over every src/**/*.cpp with the build
directory's compilation database; the tool's exit status is the verdict
(findings-as-errors).

When the tool binary is absent (Clang dev headers were not installed, so
the build skipped it), exits 77 — registered with ctest as
SKIP_RETURN_CODE — after printing a visible notice. gdur-lint remains the
portable fallback in that configuration.
"""

import argparse
import os
import re
import subprocess
import sys

SKIP = 77
HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))

EXPECT_RE = re.compile(r"^//\s*expect:\s*(\S+)\s*$", re.M)


def tool_missing(path: str) -> bool:
    return not (os.path.isfile(path) and os.access(path, os.X_OK))


def run_fixture(tool: str, path: str, src_dir: str):
    cmd = [tool, path, "--", "-std=c++17", "-I", src_dir, "-w"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def corpus_mode(tool: str) -> int:
    src_dir = os.path.join(REPO, "src")
    failures = []
    checked = 0

    bad_dir = os.path.join(HERE, "corpus", "bad")
    for name in sorted(os.listdir(bad_dir)):
        if not name.endswith(".cpp"):
            continue
        path = os.path.join(bad_dir, name)
        with open(path, encoding="utf-8") as f:
            expected = EXPECT_RE.findall(f.read())
        if not expected:
            failures.append(f"bad/{name}: no '// expect:' header")
            continue
        code, out, err = run_fixture(tool, path, src_dir)
        if code == 2:
            failures.append(f"bad/{name}: tool failed to parse fixture:\n{err}")
            continue
        if code != 1:
            failures.append(
                f"bad/{name}: expected findings (exit 1), got exit {code}\n{out}{err}")
            continue
        for check in expected:
            checked += 1
            if f"[{check}]" not in out:
                failures.append(
                    f"bad/{name}: expected a [{check}] finding, got:\n{out}")

    good_dir = os.path.join(HERE, "corpus", "good")
    for name in sorted(os.listdir(good_dir)):
        if not name.endswith(".cpp"):
            continue
        path = os.path.join(good_dir, name)
        code, out, err = run_fixture(tool, path, src_dir)
        checked += 1
        if code != 0 or " warning: " in out:
            failures.append(
                f"good/{name}: expected clean (exit 0), got exit {code}\n{out}{err}")

    if failures:
        print("gdur-analyze self-test FAILED:")
        for f in failures:
            print("  *", f)
        return 1
    print(f"gdur-analyze self-test OK ({checked} expectations)")
    return 0


def tree_mode(tool: str, build_dir: str) -> int:
    sources = []
    for root, _dirs, files in os.walk(os.path.join(REPO, "src")):
        for name in sorted(files):
            if name.endswith(".cpp"):
                sources.append(os.path.join(root, name))
    if not os.path.isfile(os.path.join(build_dir, "compile_commands.json")):
        print(f"gdur-analyze: no compile_commands.json in {build_dir} — skip")
        return SKIP
    cmd = [tool, "-p", build_dir] + sources
    proc = subprocess.run(cmd)
    return proc.returncode


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--tool", default=os.path.join(
        REPO, "build", "tools", "gdur_analyze", "gdur-analyze"))
    ap.add_argument("--tree", action="store_true")
    ap.add_argument("--build", default=os.path.join(REPO, "build"))
    args = ap.parse_args()

    if tool_missing(args.tool):
        print("=" * 70)
        print("gdur-analyze SKIPPED: tool not built at")
        print(f"  {args.tool}")
        print("Install Clang dev headers (llvm-dev libclang-dev clang) and")
        print("reconfigure with -DGDUR_ANALYZE=ON to enable the AST checks;")
        print("gdur-lint remains the portable fallback meanwhile.")
        print("=" * 70)
        return SKIP

    if args.tree:
        return tree_mode(args.tool, args.build)
    return corpus_mode(args.tool)


if __name__ == "__main__":
    sys.exit(main())

#include "tu_model.h"

#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/AST/Stmt.h"
#include "clang/AST/StmtCXX.h"

namespace gdur_analyze {

using namespace clang;

namespace {

/// Qualified record name of a (possibly sugared/reference) type, or "".
std::string record_name_of(QualType qt) {
  if (qt.isNull()) return {};
  QualType t = qt.getNonReferenceType().getCanonicalType();
  if (const auto* rd = t->getAsCXXRecordDecl())
    return rd->getQualifiedNameAsString();
  if (const auto* rd = t->getAsRecordDecl())
    return rd->getQualifiedNameAsString();
  return {};
}

/// The ten ProtocolSpec realization points (mirrors gdur-lint SPEC_POINTS).
bool is_spec_type(QualType qt) {
  return record_name_of(qt) == "gdur::core::ProtocolSpec";
}

class Builder : public RecursiveASTVisitor<Builder> {
 public:
  explicit Builder(TuModel& m) : m_(m) {}

  bool shouldVisitTemplateInstantiations() const { return true; }
  bool shouldVisitImplicitCode() const { return true; }

  bool VisitFunctionDecl(FunctionDecl* fd) {
    if (!fd->isThisDeclarationADefinition() || !fd->hasBody()) return true;
    if (fd->getBuiltinID() != 0) return true;
    const FunctionDecl* key = fd->getCanonicalDecl();
    FnInfo& fn = m_.fns[key];
    fn.decl = key;
    cur_ = &fn;
    if (const auto* ctor = dyn_cast<CXXConstructorDecl>(fd)) {
      for (const CXXCtorInitializer* init : ctor->inits())
        walk(init->getInit());
    }
    walk(fd->getBody());
    cur_ = nullptr;

    if (const auto* md = dyn_cast<CXXMethodDecl>(fd)) {
      for (const CXXMethodDecl* over : md->overridden_methods())
        add_overrider(over, key);
    }
    if (const FunctionDecl* pattern = fd->getTemplateInstantiationPattern())
      m_.instantiations[pattern->getCanonicalDecl()].push_back(key);
    return true;
  }

  bool VisitFieldDecl(FieldDecl* fd) {
    if (TuModel::annotation_of(fd, "gdur::confined:"))
      m_.confined_decls.push_back(fd);
    return true;
  }

  bool VisitVarDecl(VarDecl* vd) {
    if (vd->hasGlobalStorage() &&
        TuModel::annotation_of(vd, "gdur::confined:"))
      m_.confined_decls.push_back(vd);
    return true;
  }

 private:
  void add_overrider(const CXXMethodDecl* base, const FunctionDecl* derived) {
    m_.overriders[base->getCanonicalDecl()].push_back(derived);
    // Transitive: an override of B::f where B::f overrides A::f also
    // satisfies a call through A::f.
    for (const CXXMethodDecl* up : base->overridden_methods())
      add_overrider(up, derived);
  }

  void add_call(const FunctionDecl* callee, SourceLocation loc,
                unsigned intrinsic = kNone, bool is_virtual = false) {
    CallSite cs;
    cs.callee = callee != nullptr ? callee->getCanonicalDecl() : nullptr;
    cs.loc = loc;
    cs.intrinsic = intrinsic;
    cs.is_virtual = is_virtual;
    cur_->calls.push_back(cs);
  }

  /// Body walker. RecursiveASTVisitor enumerates the function definitions;
  /// this walker owns everything inside a body so that each fact lands on
  /// the right function (lambda bodies are separate functions connected by
  /// a creation edge at the LambdaExpr).
  void walk(const Stmt* s) {
    if (s == nullptr || cur_ == nullptr) return;

    if (const auto* le = dyn_cast<LambdaExpr>(s)) {
      // Creation edge: whatever the lambda does is chargeable to the
      // function that spells it (conservative for deferred execution).
      if (const CXXMethodDecl* op = le->getCallOperator())
        add_call(op, le->getBeginLoc());
      for (const Expr* init : le->capture_inits()) walk(init);
      return;  // body visited as its own function
    }

    if (const auto* ne = dyn_cast<CXXNewExpr>(s)) {
      const FunctionDecl* op = ne->getOperatorNew();
      const bool placement =
          op != nullptr && op->isReservedGlobalPlacementOperator();
      if (!placement) add_call(op, ne->getBeginLoc(), kAlloc);
      for (const Stmt* child : s->children()) walk(child);
      return;
    }

    if (const auto* ce = dyn_cast<CallExpr>(s)) {
      const FunctionDecl* callee = ce->getDirectCallee();
      bool virt = false;
      if (const auto* mc = dyn_cast<CXXMemberCallExpr>(ce)) {
        if (const CXXMethodDecl* md = mc->getMethodDecl()) {
          virt = md->isVirtual();
          if (const auto* me =
                  dyn_cast<MemberExpr>(mc->getCallee()->IgnoreParens()))
            if (me->hasQualifier()) virt = false;  // A::f() devirtualizes
        }
      }
      if (callee != nullptr && callee->getBuiltinID() == 0)
        add_call(callee, ce->getBeginLoc(), kNone, virt);
      else if (callee == nullptr)
        add_call(nullptr, ce->getBeginLoc());  // opaque (fn ptr / std::function)
    } else if (const auto* cc = dyn_cast<CXXConstructExpr>(s)) {
      add_call(cc->getConstructor(), cc->getBeginLoc());
    } else if (const auto* fr = dyn_cast<CXXForRangeStmt>(s)) {
      LoopRecord loop;
      loop.loc = fr->getForLoc();
      if (const Expr* range = fr->getRangeInit())
        loop.container = record_name_of(range->getType());
      loop.first_call = static_cast<unsigned>(cur_->calls.size());
      for (const Stmt* child : s->children()) walk(child);
      loop.last_call = static_cast<unsigned>(cur_->calls.size());
      cur_->loops.push_back(loop);
      return;
    } else if (const auto* me = dyn_cast<MemberExpr>(s)) {
      note_confined(me->getMemberDecl(), me->getMemberLoc());
    } else if (const auto* dre = dyn_cast<DeclRefExpr>(s)) {
      note_confined(dre->getDecl(), dre->getLocation());
    } else if (const auto* ds = dyn_cast<DeclStmt>(s)) {
      for (const Decl* d : ds->decls())
        if (const auto* vd = dyn_cast<VarDecl>(d)) note_spec_var(vd);
    } else if (const auto* bo = dyn_cast<BinaryOperator>(s)) {
      if (bo->isAssignmentOp()) note_spec_assign(bo);
    }

    for (const Stmt* child : s->children()) walk(child);
  }

  void note_confined(const ValueDecl* vd, SourceLocation loc) {
    if (vd == nullptr) return;
    if (!TuModel::annotation_of(vd, "gdur::confined:")) return;
    ConfinedAccess a;
    a.target = vd;
    a.loc = loc;
    cur_->confined.push_back(a);
  }

  void note_spec_var(const VarDecl* vd) {
    if (!is_spec_type(vd->getType())) return;
    SpecVar sv;
    sv.var = vd->getCanonicalDecl();
    sv.loc = vd->getLocation();
    const Expr* init = vd->getInit();
    if (init != nullptr) {
      const Expr* e = init->IgnoreImplicit();
      if (const auto* cc = dyn_cast<CXXConstructExpr>(e)) {
        // `ProtocolSpec s;` (default ctor) starts fresh — every
        // realization point must be pinned. Copy/move construction from
        // another spec inherits its points.
        sv.inherited = cc->getNumArgs() > 0;
      } else {
        // Factory call (`auto s = gmu();`), copy from a DeclRefExpr, etc.
        sv.inherited = true;
      }
    }
    cur_->spec_vars.push_back(sv);
  }

  void note_spec_assign(const BinaryOperator* bo) {
    const auto* me = dyn_cast<MemberExpr>(bo->getLHS()->IgnoreImplicit());
    if (me == nullptr) return;
    const auto* dre =
        dyn_cast<DeclRefExpr>(me->getBase()->IgnoreImpCasts());
    if (dre == nullptr) return;
    const auto* vd = dyn_cast<VarDecl>(dre->getDecl());
    if (vd == nullptr) return;
    const VarDecl* key = vd->getCanonicalDecl();
    for (SpecVar& sv : cur_->spec_vars)
      if (sv.var == key)
        sv.pinned.insert(me->getMemberDecl()->getNameAsString());
  }

  TuModel& m_;
  FnInfo* cur_ = nullptr;
};

}  // namespace

void TuModel::build(ASTContext& context) {
  ctx = &context;
  Builder b(*this);
  b.TraverseDecl(context.getTranslationUnitDecl());
}

const llvm::DenseMap<const FunctionDecl*,
                     llvm::SmallVector<const FunctionDecl*, 4>>&
TuModel::callers() {
  if (!callers_built_) {
    callers_built_ = true;
    for (const auto& entry : fns) {
      const FunctionDecl* caller = entry.first;
      for (const CallSite& cs : entry.second.calls) {
        if (cs.callee == nullptr) continue;
        callers_[cs.callee].push_back(caller);
        if (cs.is_virtual) {
          auto it = overriders.find(cs.callee);
          if (it != overriders.end())
            for (const FunctionDecl* over : it->second)
              callers_[over].push_back(caller);
        }
      }
    }
  }
  return callers_;
}

std::optional<std::string> TuModel::annotation_of(const Decl* d,
                                                  llvm::StringRef prefix) {
  auto check = [&](const Decl* decl) -> std::optional<std::string> {
    for (const auto* attr : decl->specific_attrs<AnnotateAttr>()) {
      llvm::StringRef ann = attr->getAnnotation();
      if (ann.startswith(prefix)) return ann.drop_front(prefix.size()).str();
    }
    return std::nullopt;
  };
  if (const auto* fd = dyn_cast<FunctionDecl>(d)) {
    for (const FunctionDecl* re : fd->redecls())
      if (auto a = check(re)) return a;
    // Template instantiations may not copy every attribute; consult the
    // pattern the user actually annotated.
    if (const FunctionDecl* pattern = fd->getTemplateInstantiationPattern())
      for (const FunctionDecl* re : pattern->redecls())
        if (auto a = check(re)) return a;
    return std::nullopt;
  }
  return check(d);
}

bool TuModel::has_annotation(const Decl* d, llvm::StringRef full) {
  auto a = annotation_of(d, full);
  return a.has_value() && a->empty();
}

std::string TuModel::qual_name(const NamedDecl* d) {
  return d->getQualifiedNameAsString();
}

unsigned TuModel::classify_by_name(llvm::StringRef qual) {
  // Bare C/POSIX calls: the qualified name IS the bare name (methods named
  // `read`/`send`/`time` never match — their qualified name is longer).
  static const struct {
    const char* name;
    unsigned mask;
  } kBare[] = {
      // allocation
      {"malloc", kAlloc},
      {"calloc", kAlloc},
      {"realloc", kAlloc},
      {"strdup", kAlloc},
      {"strndup", kAlloc},
      {"aligned_alloc", kAlloc},
      {"posix_memalign", kAlloc},
      {"asprintf", kAlloc},
      {"vasprintf", kAlloc},
      // locks
      {"pthread_mutex_lock", kLock},
      {"pthread_mutex_timedlock", kLock},
      {"pthread_rwlock_rdlock", kLock},
      {"pthread_rwlock_wrlock", kLock},
      {"pthread_spin_lock", kLock},
      {"pthread_cond_wait", kLock | kBlock},
      {"pthread_cond_timedwait", kLock | kBlock},
      // clock reads
      {"clock_gettime", kClock},
      {"gettimeofday", kClock},
      {"time", kClock},
      {"timespec_get", kClock},
      {"ftime", kClock},
      // blocking syscalls
      {"read", kBlock},
      {"write", kBlock},
      {"readv", kBlock},
      {"writev", kBlock},
      {"pread", kBlock},
      {"pwrite", kBlock},
      {"preadv", kBlock},
      {"pwritev", kBlock},
      {"recv", kBlock},
      {"recvfrom", kBlock},
      {"recvmsg", kBlock},
      {"send", kBlock},
      {"sendto", kBlock},
      {"sendmsg", kBlock},
      {"poll", kBlock},
      {"ppoll", kBlock},
      {"select", kBlock},
      {"pselect", kBlock},
      {"epoll_wait", kBlock},
      {"epoll_pwait", kBlock},
      {"accept", kBlock},
      {"accept4", kBlock},
      {"connect", kBlock},
      {"fsync", kBlock},
      {"fdatasync", kBlock},
      {"flock", kBlock},
      {"sem_wait", kBlock},
      {"wait", kBlock},
      {"waitpid", kBlock},
      // hard sleeps
      {"usleep", kBlock | kSleep},
      {"nanosleep", kBlock | kSleep},
      {"sleep", kBlock | kSleep},
      {"clock_nanosleep", kBlock | kSleep},
  };
  for (const auto& e : kBare)
    if (qual == e.name) return e.mask;

  // Global operator new (direct calls and the CXXNewExpr operator decl).
  if (qual == "operator new" || qual == "operator new[]") return kAlloc;

  // std::chrono clocks: steady_clock::now / system_clock::now / ... are
  // out-of-line in libstdc++, so name rules are the only handle.
  if (qual.endswith("::now") && qual.contains("clock")) return kClock;

  // std::this_thread sleeps (sleep_for is a header template that bottoms
  // out in __sleep_for, which is out-of-line).
  if (qual.contains("this_thread") &&
      (qual.contains("sleep_for") || qual.contains("sleep_until") ||
       qual.contains("__sleep_for")))
    return kBlock | kSleep;

  // Backstop for lock types whose acquisition is out-of-line in some
  // standard library builds (the usual libstdc++ path bottoms out in
  // pthread_mutex_lock and is caught above).
  if (qual.startswith("std::") &&
      (qual.contains("mutex") || qual.contains("lock_guard") ||
       qual.contains("unique_lock") || qual.contains("scoped_lock") ||
       qual.contains("shared_lock")) &&
      (qual.endswith("::lock") || qual.endswith("::try_lock")))
    return kLock;
  if (qual.contains("condition_variable") && qual.contains("::wait"))
    return kLock | kBlock;

  return kNone;
}

unsigned TuModel::classify_by_annotation(const FunctionDecl* fd,
                                         bool& boundary) {
  boundary = false;
  if (fd == nullptr) return kNone;
  if (has_annotation(fd, "gdur::hot_boundary")) {
    boundary = true;
    return kNone;
  }
  unsigned mask = kNone;
  if (has_annotation(fd, "gdur::blocking")) mask |= kBlock;
  if (has_annotation(fd, "gdur::allocates")) mask |= kAlloc;
  if (mask != kNone) boundary = true;  // declared contracts are terminal
  return mask;
}

}  // namespace gdur_analyze

// Per-translation-unit model shared by every gdur-analyze check.
//
// One RecursiveASTVisitor pass over the TU collects, per function
// definition: outgoing call edges (with virtual-dispatch and lambda
// creation edges), intrinsic sinks (operator new), range-for loops over
// unordered containers, accesses to lane-confined declarations, and local
// ProtocolSpec variables with the set of realization points assigned to
// them. The four checks then run as pure graph/set queries over this
// model — none of them re-walks the AST.
//
// Scope is deliberately per-TU (the same contract the checks document):
// bodies the TU cannot see are opaque boundaries, virtual calls resolve to
// the overriders the TU knows, and std::function targets are invisible.
// The annotation vocabulary (src/common/analysis_annotations.h) exists to
// close exactly those gaps where they matter.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/Basic/SourceLocation.h"
#include "llvm/ADT/DenseMap.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace gdur_analyze {

/// Sink classification bitmask for hot-path reachability.
enum SinkKind : unsigned {
  kNone = 0,
  kAlloc = 1u << 0,  // heap allocation
  kLock = 1u << 1,   // mutex/lock acquisition
  kClock = 1u << 2,  // real-clock read
  kBlock = 1u << 3,  // blocking syscall
  kSleep = 1u << 4,  // hard sleep (subset of blocking, separately bannable)
};

/// One outgoing edge of a function body.
struct CallSite {
  /// Canonical callee decl; null for calls with no direct callee
  /// (function pointers, std::function) — opaque boundaries.
  const clang::FunctionDecl* callee = nullptr;
  clang::SourceLocation loc;
  /// Intrinsic sink mask carried by the expression itself (CXXNewExpr).
  unsigned intrinsic = kNone;
  bool is_virtual = false;
};

/// A range-for over a container; checks filter on the container type.
struct LoopRecord {
  clang::SourceLocation loc;
  std::string container;  // qualified record name of the range expression
  unsigned first_call = 0, last_call = 0;  // call-index window of the body
};

/// One access to a GDUR_CONFINED declaration.
struct ConfinedAccess {
  const clang::ValueDecl* target = nullptr;
  clang::SourceLocation loc;
};

/// A local ProtocolSpec variable and the realization points pinned on it.
struct SpecVar {
  const clang::VarDecl* var = nullptr;
  clang::SourceLocation loc;
  /// True when the spec starts as a copy of another spec (factory call or
  /// copy construction) — realization points are inherited, not required.
  bool inherited = false;
  std::set<std::string> pinned;
};

struct FnInfo {
  const clang::FunctionDecl* decl = nullptr;
  std::vector<CallSite> calls;
  std::vector<LoopRecord> loops;
  std::vector<ConfinedAccess> confined;
  std::vector<SpecVar> spec_vars;
};

class TuModel {
 public:
  void build(clang::ASTContext& ctx);

  clang::ASTContext* ctx = nullptr;

  /// Canonical FunctionDecl → body facts. Covers template instantiations
  /// and lambda call operators (reached through a creation edge from the
  /// function that spells the lambda).
  llvm::DenseMap<const clang::FunctionDecl*, FnInfo> fns;

  /// Virtual method (canonical) → overriders with bodies in this TU.
  llvm::DenseMap<const clang::FunctionDecl*,
                 llvm::SmallVector<const clang::FunctionDecl*, 4>>
      overriders;

  /// Template pattern (canonical) → instantiations seen in this TU.
  llvm::DenseMap<const clang::FunctionDecl*,
                 llvm::SmallVector<const clang::FunctionDecl*, 4>>
      instantiations;

  /// Reverse call graph over `fns` (callee → callers), creation and
  /// virtual-overrider edges included. Built on first use.
  const llvm::DenseMap<const clang::FunctionDecl*,
                       llvm::SmallVector<const clang::FunctionDecl*, 4>>&
  callers();

  /// All GDUR_CONFINED fields/globals declared in this TU.
  std::vector<const clang::ValueDecl*> confined_decls;

  // --- annotation helpers -------------------------------------------------

  /// First `annotate` attribute value starting with `prefix`, with the
  /// prefix stripped; checks every redeclaration for functions.
  static std::optional<std::string> annotation_of(const clang::Decl* d,
                                                  llvm::StringRef prefix);
  static bool has_annotation(const clang::Decl* d, llvm::StringRef full);

  static std::string qual_name(const clang::NamedDecl* d);

  /// Name-based sink classification for callees whose body (or contract)
  /// the TU cannot see. `qual` is the qualified name.
  static unsigned classify_by_name(llvm::StringRef qual);

  /// Annotation-based sink/boundary classification. Returns the sink mask
  /// and sets `boundary` when traversal must stop (hot_boundary, blocking,
  /// allocates — declared contracts are terminal).
  static unsigned classify_by_annotation(const clang::FunctionDecl* fd,
                                         bool& boundary);

 private:
  llvm::DenseMap<const clang::FunctionDecl*,
                 llvm::SmallVector<const clang::FunctionDecl*, 4>>
      callers_;
  bool callers_built_ = false;
};

}  // namespace gdur_analyze

// gdur-spec-realization — AST-exact verification that every ProtocolSpec
// built from scratch pins all ten realization points of the G-DUR plug-in
// table (§3 of the paper): name, theta, choose, ac, xcast, certifying,
// vote_snd, vote_recv, commute, certify.
//
// A `ProtocolSpec s;` (default-constructed) local must see a member
// assignment for every point before the factory returns. Specs that start
// as a copy of another spec (`auto s = gmu();` — the GMU* ablation idiom)
// inherit the base's points and only need to assign what they change.
// This replaces gdur-lint's protocol/spec-complete textual scan with the
// actual assignment set from the AST.
#include <string>
#include <vector>

#include "checks.h"

namespace gdur_analyze {

namespace {

const char* const kPoints[] = {
    "name",     "theta",    "choose",  "ac",      "xcast",
    "certifying", "vote_snd", "vote_recv", "commute", "certify",
};

}  // namespace

void check_spec(TuModel& m, std::vector<Finding>& out) {
  for (auto& entry : m.fns) {
    for (const SpecVar& sv : entry.second.spec_vars) {
      if (sv.inherited) continue;
      std::string missing;
      for (const char* point : kPoints) {
        if (sv.pinned.count(point) != 0) continue;
        if (!missing.empty()) missing += ", ";
        missing += point;
      }
      if (missing.empty()) continue;

      Finding f;
      f.check = kSpecCheck;
      f.loc = sv.loc;
      f.msg = "ProtocolSpec '" + sv.var->getNameAsString() +
              "' is built from scratch but leaves realization point(s) "
              "unpinned: " +
              missing +
              "; every point of the plug-in table must be set explicitly "
              "(or start from a base spec)";
      out.push_back(std::move(f));
    }
  }
}

}  // namespace gdur_analyze

// gdur-hotpath-reachability — proves that no sink of a banned class is
// transitively reachable from a GDUR_HOT_PATH root, upgrading gdur-lint's
// one-hop front/dispatch-alloc and obs/hot-path-alloc regex rules.
//
// Per banned sink class, a DFS from the root follows: direct calls,
// constructor calls, virtual calls expanded to every overrider this TU
// knows, lambda creation edges (the lambda's code is chargeable to the
// function that spells it), and template instantiations — so an innocent
// `v.push_back(x)` is tracked through the vector's reallocation path down
// to `operator new`. Traversal stops at declared contracts (GDUR_BLOCKING,
// GDUR_ALLOCATES — terminal sinks) and sanctioned hand-offs
// (GDUR_HOT_BOUNDARY). Callees with no body in the TU are classified by
// name (syscalls, clocks, allocator entry points); anything else unseen is
// an opaque boundary, which is exactly the per-TU contract the annotation
// vocabulary exists to patch.
#include <string>
#include <vector>

#include "checks.h"
#include "llvm/ADT/DenseSet.h"

namespace gdur_analyze {

using clang::FunctionDecl;

namespace {

const char* kind_word(unsigned kind) {
  switch (kind) {
    case kAlloc:
      return "allocation";
    case kLock:
      return "lock acquisition";
    case kClock:
      return "clock read";
    case kBlock:
      return "blocking call";
    case kSleep:
      return "hard sleep";
    default:
      return "sink";
  }
}

unsigned parse_classes(llvm::StringRef classes) {
  unsigned banned = kNone;
  llvm::SmallVector<llvm::StringRef, 6> parts;
  classes.split(parts, ',', -1, /*KeepEmpty=*/false);
  for (llvm::StringRef c : parts) {
    c = c.trim();
    if (c == "noalloc")
      banned |= kAlloc;
    else if (c == "nolock")
      banned |= kLock;
    else if (c == "noclock")
      banned |= kClock;
    else if (c == "noblock")
      banned |= kBlock | kSleep;
    else if (c == "nosleep")
      banned |= kSleep;
  }
  return banned;
}

struct Hop {
  const FunctionDecl* fn;
  clang::SourceLocation loc;  // call site inside `fn`
  std::string what;           // callee description
};

/// DFS for one (root, sink-class) pair. `path` holds the call chain from
/// the root to the sink on success; path.front().loc (the first hop inside
/// the root) is the finding's primary — and suppression — location.
struct Search {
  TuModel& m;
  unsigned kind;
  llvm::DenseSet<const FunctionDecl*> visited;
  std::vector<Hop> path;

  bool from(const FunctionDecl* fn) {
    if (fn == nullptr || !visited.insert(fn).second) return false;
    auto it = m.fns.find(fn);
    if (it == m.fns.end()) return false;
    if (path.size() > 192) return false;  // degenerate template towers
    for (const CallSite& cs : it->second.calls) {
      if (cs.intrinsic & kind) {
        path.push_back({fn, cs.loc, "operator new"});
        return true;
      }
      if (cs.callee == nullptr) continue;  // fn ptr / std::function: opaque
      bool boundary = false;
      const unsigned declared =
          TuModel::classify_by_annotation(cs.callee, boundary);
      const std::string qual = TuModel::qual_name(cs.callee);
      if (declared & kind) {
        path.push_back({fn, cs.loc, qual + " (declared contract)"});
        return true;
      }
      if (boundary) continue;  // GDUR_HOT_BOUNDARY or terminal contract
      if (TuModel::classify_by_name(qual) & kind) {
        path.push_back({fn, cs.loc, qual});
        return true;
      }
      path.push_back({fn, cs.loc, qual});
      if (from(cs.callee)) return true;
      if (m.fns.find(cs.callee) == m.fns.end()) {
        // Bodyless under this decl: descend into instantiations the TU
        // materialized from the same pattern.
        auto inst = m.instantiations.find(cs.callee);
        if (inst != m.instantiations.end())
          for (const FunctionDecl* fd : inst->second)
            if (from(fd)) return true;
      }
      if (cs.is_virtual) {
        auto over = m.overriders.find(cs.callee);
        if (over != m.overriders.end())
          for (const FunctionDecl* fd : over->second)
            if (from(fd)) return true;
      }
      path.pop_back();
    }
    return false;
  }
};

}  // namespace

void check_hotpath(TuModel& m, std::vector<Finding>& out) {
  for (const auto& entry : m.fns) {
    const FunctionDecl* root = entry.first;
    auto classes = TuModel::annotation_of(root, "gdur::hot_path:");
    if (!classes) continue;
    const unsigned banned = parse_classes(*classes);
    for (unsigned kind : {kAlloc, kLock, kClock, kBlock, kSleep}) {
      if ((banned & kind) == 0) continue;
      Search s{m, kind, {}, {}};
      if (!s.from(root)) continue;

      Finding f;
      f.check = kHotpathCheck;
      f.loc = s.path.front().loc;
      f.msg = "hot path '" + TuModel::qual_name(root) + "' (" + *classes +
              ") reaches " + std::string(kind_word(kind)) + ": " +
              s.path.back().what;
      // Elide interior std:: frames beyond a short prefix — the first hops
      // (our code) and the final sink are what the reader needs.
      std::size_t shown = 0;
      for (std::size_t i = 0; i < s.path.size(); ++i) {
        const Hop& h = s.path[i];
        const bool last = i + 1 == s.path.size();
        if (!last && shown >= 6 && llvm::StringRef(h.what).startswith("std::"))
          continue;
        ++shown;
        f.notes.push_back({h.loc, (last ? "sink: " : "via: ") + h.what});
      }
      out.push_back(std::move(f));
    }
  }
}

}  // namespace gdur_analyze

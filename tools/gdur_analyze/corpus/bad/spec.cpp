// gdur-analyze corpus: a ProtocolSpec built from scratch that leaves
// realization points of the plug-in table unpinned.
// expect: gdur-spec-realization
#include "common/analysis_annotations.h"

// Freestanding mock matched by qualified name.
namespace gdur::core {
struct ProtocolSpec {
  const char* name = nullptr;
  int theta = 0;
  int choose = 0;
  int ac = 0;
  int xcast = 0;
  int certifying = 0;
  int vote_snd = 0;
  int vote_recv = 0;
  int commute = 0;
  int certify = 0;
  bool trivial_certify = false;
};
}  // namespace gdur::core

namespace corpus {

gdur::core::ProtocolSpec half_pinned() {
  gdur::core::ProtocolSpec s;
  s.name = "HALF";
  s.theta = 1;
  s.choose = 2;
  s.ac = 3;
  // xcast, certifying, vote_snd, vote_recv, commute, certify: unpinned.
  return s;
}

}  // namespace corpus

// gdur-analyze corpus (never compiled into the build): every hot-path
// reachability shape the check must catch.
// expect: gdur-hotpath-reachability
#include "common/analysis_annotations.h"

extern "C" void* malloc(unsigned long n);
extern "C" int usleep(unsigned usec);

namespace corpus {

// One call deep — the shape the old regex rules could not see.
inline void* helper_alloc() { return malloc(16); }

// Template instantiation: the allocation happens inside the instantiated
// body, two hops from the root.
template <typename T>
T* make_one() {
  return new T();
}

// Virtual dispatch: the static callee is clean, an overrider allocates.
struct Sink {
  virtual ~Sink() = default;
  virtual void hit() {}
};
struct AllocSink : Sink {
  void hit() override { helper_alloc(); }
};

// Declared contract: no body anywhere, but annotated blocking.
GDUR_BLOCKING void wrapped_syscall();

GDUR_HOT_PATH("noalloc,nosleep")
void demux(Sink& s) {
  s.hit();  // resolves to AllocSink::hit -> helper_alloc -> malloc
}

GDUR_HOT_PATH("noalloc")
int record_path() {
  int* p = make_one<int>();
  return *p;
}

GDUR_HOT_PATH("noblock")
void no_block_path() { wrapped_syscall(); }

GDUR_HOT_PATH("nosleep")
void no_sleep_path() { usleep(1); }

// Lambda creation edge: the lambda's body is chargeable to its creator.
GDUR_HOT_PATH("noalloc")
void lambda_path() {
  auto fn = [] { helper_alloc(); };
  fn();
}

}  // namespace corpus

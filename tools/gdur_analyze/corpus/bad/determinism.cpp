// gdur-analyze corpus: unordered-container iteration order escaping into
// ordering-sensitive emission points (wire encode, WAL append), directly
// and through a helper.
// expect: gdur-determinism-escape
#include "common/analysis_annotations.h"

// Freestanding mock: the check matches the container by qualified record
// name, so a minimal std::unordered_map is enough.
namespace std {
template <class K, class V>
struct unordered_map {
  struct value_type {
    K first;
    V second;
  };
  struct iterator {
    value_type* p = nullptr;
    bool operator!=(const iterator& o) const { return p != o.p; }
    iterator& operator++() { return *this; }
    value_type& operator*() { return *p; }
  };
  iterator begin() { return {}; }
  iterator end() { return {}; }
};
}  // namespace std

namespace gdur::net::codec {
struct Writer {
  void u32(unsigned v) { last = v; }
  unsigned last = 0;
};
inline void encode_entry(Writer& w, unsigned v) { w.u32(v); }
}  // namespace gdur::net::codec

namespace corpus {

struct Wal {
  void append_record(unsigned v) { tail = v; }
  unsigned tail = 0;
};

// Direct: encode inside the loop body.
void emit_all(std::unordered_map<int, unsigned>& m,
              gdur::net::codec::Writer& w) {
  for (auto& kv : m) {
    gdur::net::codec::encode_entry(w, kv.second);
  }
}

// Transitive: the loop calls a helper that bottoms out in a Writer method.
inline void note(gdur::net::codec::Writer& w, unsigned v) { w.u32(v); }
void emit_indirect(std::unordered_map<int, unsigned>& m,
                   gdur::net::codec::Writer& w) {
  for (auto& kv : m) {
    note(w, kv.second);
  }
}

// WAL append from unordered order.
void persist(std::unordered_map<int, unsigned>& m, Wal& wal) {
  for (auto& kv : m) {
    wal.append_record(kv.second);
  }
}

}  // namespace corpus

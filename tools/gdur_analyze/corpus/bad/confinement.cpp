// gdur-analyze corpus: lane-confined state touched from functions the
// call graph cannot prove confined.
// expect: gdur-thread-confinement
#include "common/analysis_annotations.h"

namespace corpus {

struct Server {
  GDUR_CONFINED("site-thread") int sessions_ = 0;

  GDUR_CONFINED("site-thread") void on_accept() { sessions_ += 1; }

  // Unannotated, and its only caller is an unannotated entry point: the
  // tool cannot prove which thread runs this — finding.
  void gauge() { sessions_ -= 1; }
};

void external_entry(Server& s) { s.gauge(); }

}  // namespace corpus

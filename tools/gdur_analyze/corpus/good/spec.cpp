// gdur-analyze corpus: complete spec factories — all ten points pinned
// from scratch, and the ablation idiom (copy a base spec, tweak a point).
// expect-clean
#include "common/analysis_annotations.h"

namespace gdur::core {
struct ProtocolSpec {
  const char* name = nullptr;
  int theta = 0;
  int choose = 0;
  int ac = 0;
  int xcast = 0;
  int certifying = 0;
  int vote_snd = 0;
  int vote_recv = 0;
  int commute = 0;
  int certify = 0;
  bool trivial_certify = false;
};
}  // namespace gdur::core

namespace corpus {

gdur::core::ProtocolSpec full() {
  gdur::core::ProtocolSpec s;
  s.name = "FULL";
  s.theta = 1;
  s.choose = 2;
  s.ac = 3;
  s.xcast = 4;
  s.certifying = 5;
  s.vote_snd = 6;
  s.vote_recv = 7;
  s.commute = 8;
  s.certify = 9;
  return s;
}

// GMU*-style ablation: starts as a copy, inherits the base's points.
gdur::core::ProtocolSpec derived() {
  auto s = full();
  s.name = "FULL*";
  s.choose = 1;
  return s;
}

}  // namespace corpus

// gdur-analyze corpus: every confined access provable — annotated
// accessors, helpers reached only from annotated callers, and the
// constructor/destructor exemption.
// expect-clean
#include "common/analysis_annotations.h"

namespace corpus {

struct Server {
  GDUR_CONFINED("site-thread") int sessions_ = 0;

  Server() { sessions_ = 1; }   // ctor exempt: not yet shared
  ~Server() { sessions_ = 0; }  // dtor exempt: no longer shared

  GDUR_CONFINED("site-thread") void on_accept() { bump(); }
  GDUR_CONFINED("site-thread") void on_close() { bump(); }

  // Unannotated, but every in-TU caller chain above it ends in an
  // annotated function — proven by the reverse call graph.
  void bump() { sessions_ += 1; }
};

}  // namespace corpus

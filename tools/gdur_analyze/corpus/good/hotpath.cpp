// gdur-analyze corpus: hot paths that honor their contracts — the tool
// must stay silent on every function here.
// expect-clean
#include "common/analysis_annotations.h"

extern "C" void* malloc(unsigned long n);

namespace corpus {

inline void* helper_alloc() { return malloc(16); }

inline int helper_clean(int x) { return x * 2 + 1; }

struct Sink {
  virtual ~Sink() = default;
  virtual void hit() {}
};
struct CleanSink : Sink {
  int v = 0;
  void hit() override { v = helper_clean(v); }
};

// Sanctioned hand-off: the boundary target allocates, but traversal stops
// at GDUR_HOT_BOUNDARY by design (accept-handler shape).
GDUR_HOT_BOUNDARY void setup_connection() { helper_alloc(); }

GDUR_HOT_PATH("noalloc,nosleep")
void demux(Sink& s) {
  s.hit();  // every overrider this TU knows is clean
  setup_connection();
}

// The root only bans what its contract promises: blocking is fine for a
// poller that parks in the kernel.
GDUR_BLOCKING void wrapped_syscall();
GDUR_HOT_PATH("noalloc")
void parker() { wrapped_syscall(); }

// Written-reason suppression at the first hop's line.
GDUR_HOT_PATH("noalloc")
void with_sanctioned_alloc(bool fatal) {
  if (fatal) {
    // gdur-analyze: allow(gdur-hotpath-reachability) cold fatal path; the loop exits right after
    helper_alloc();
  }
}

GDUR_HOT_PATH("noalloc,nolock,noclock,noblock")
int record(int x) {
  return helper_clean(x);
}

}  // namespace corpus

// gdur-analyze corpus: deterministic iteration patterns the check must
// accept — sorted copies feeding emitters, unordered iteration that never
// reaches an emission point.
// expect-clean
#include "common/analysis_annotations.h"

namespace std {
template <class K, class V>
struct unordered_map {
  struct value_type {
    K first;
    V second;
  };
  struct iterator {
    value_type* p = nullptr;
    bool operator!=(const iterator& o) const { return p != o.p; }
    iterator& operator++() { return *this; }
    value_type& operator*() { return *p; }
  };
  iterator begin() { return {}; }
  iterator end() { return {}; }
};
template <class T>
struct vector {
  T* b = nullptr;
  T* e = nullptr;
  T* begin() { return b; }
  T* end() { return e; }
  void push_back(const T&) {}
};
}  // namespace std

namespace gdur::net::codec {
struct Writer {
  void u32(unsigned v) { last = v; }
  unsigned last = 0;
};
}  // namespace gdur::net::codec

namespace corpus {

// Sorted-copy idiom: collect (order-insensitive), sort, then emit from the
// ordered container.
void emit_sorted(std::unordered_map<int, unsigned>& m,
                 gdur::net::codec::Writer& w) {
  std::vector<unsigned> keys;
  for (auto& kv : m) {
    keys.push_back(kv.second);  // accumulation only — no emission
  }
  for (unsigned v : keys) {
    w.u32(v);  // ordered source
  }
}

// Unordered iteration whose result never leaves the function.
unsigned sum(std::unordered_map<int, unsigned>& m) {
  unsigned total = 0;
  for (auto& kv : m) {
    total += kv.second;
  }
  return total;
}

}  // namespace corpus

// gdur-determinism-escape — flags a range-for over an unordered container
// whose body (transitively, within the TU) reaches an ordering-sensitive
// emission point: wire-frame encoding, WAL appends, trace/flight records,
// or dump_* routines. Unordered iteration order is a function of hasher
// seed and insertion history, so letting it flow into anything externally
// observable breaks the byte-identical-trace determinism contract.
//
// Sinks are matched by qualified name (codec writers/encoders, Wal appends,
// FlightRing::append, TraceRecorder, dump_*) plus anything annotated
// GDUR_ORDER_SINK. The fix is to iterate a sorted copy — or, where order is
// provably immaterial (per-connection live streams), suppress with a
// written reason.
#include <string>
#include <vector>

#include "checks.h"
#include "llvm/ADT/DenseSet.h"

namespace gdur_analyze {

using clang::FunctionDecl;

namespace {

bool is_order_sink(const FunctionDecl* fd, const std::string& qual) {
  if (TuModel::has_annotation(fd, "gdur::order_sink")) return true;
  llvm::StringRef q(qual);
  const std::string base_str = fd->getNameAsString();
  llvm::StringRef base(base_str);
  if (q.contains("codec::Writer::")) return true;
  if (q.contains("codec::") && base.startswith("encode")) return true;
  if (q.contains("Wal") && base.startswith("append")) return true;
  if (q.contains("FlightRing::append")) return true;
  if (q.contains("TraceRecorder::")) return true;
  if (base.startswith("dump_")) return true;
  return false;
}

/// DFS from the loop-body call window to the first order sink; fills
/// `chain` with the qualified names leading there.
struct SinkSearch {
  TuModel& m;
  llvm::DenseSet<const FunctionDecl*> visited;

  const FunctionDecl* find(const FunctionDecl* fn, int depth) {
    if (fn == nullptr || depth > 64 || !visited.insert(fn).second)
      return nullptr;
    auto it = m.fns.find(fn);
    if (it == m.fns.end()) return nullptr;
    for (const CallSite& cs : it->second.calls) {
      if (const FunctionDecl* hit = step(cs, depth)) return hit;
    }
    return nullptr;
  }

  const FunctionDecl* step(const CallSite& cs, int depth) {
    if (cs.callee == nullptr) return nullptr;
    const std::string qual = TuModel::qual_name(cs.callee);
    if (is_order_sink(cs.callee, qual)) return cs.callee;
    // Sinks never live inside the standard library; skip its bodies.
    if (llvm::StringRef(qual).startswith("std::")) return nullptr;
    if (const FunctionDecl* hit = find(cs.callee, depth + 1)) return hit;
    if (m.fns.find(cs.callee) == m.fns.end()) {
      auto inst = m.instantiations.find(cs.callee);
      if (inst != m.instantiations.end())
        for (const FunctionDecl* fd : inst->second)
          if (const FunctionDecl* hit = find(fd, depth + 1)) return hit;
    }
    if (cs.is_virtual) {
      auto over = m.overriders.find(cs.callee);
      if (over != m.overriders.end())
        for (const FunctionDecl* fd : over->second)
          if (const FunctionDecl* hit = find(fd, depth + 1)) return hit;
    }
    return nullptr;
  }
};

}  // namespace

void check_determinism(TuModel& m, std::vector<Finding>& out) {
  for (auto& entry : m.fns) {
    const FnInfo& fn = entry.second;
    for (const LoopRecord& loop : fn.loops) {
      if (llvm::StringRef(loop.container).find("std::unordered_") ==
          llvm::StringRef::npos)
        continue;
      SinkSearch search{m, {}};
      const FunctionDecl* sink = nullptr;
      for (unsigned i = loop.first_call;
           i < loop.last_call && i < fn.calls.size() && sink == nullptr; ++i)
        sink = search.step(fn.calls[i], 0);
      if (sink == nullptr) continue;

      Finding f;
      f.check = kDeterminismCheck;
      f.loc = loop.loc;
      f.msg = "iteration over unordered container ('" + loop.container +
              "') flows into ordering-sensitive emission '" +
              TuModel::qual_name(sink) +
              "'; iterate a sorted copy or suppress with a reason if the "
              "order is provably immaterial";
      f.notes.push_back({sink->getLocation(),
                         "emission point reached from the loop body"});
      out.push_back(std::move(f));
    }
  }
}

}  // namespace gdur_analyze

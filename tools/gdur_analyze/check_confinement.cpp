// gdur-thread-confinement — every access to a GDUR_CONFINED("lane")
// field/global must come from a function *proven* confined to that lane,
// replacing gdur-lint's thread/shard-affinity heuristic.
//
// Proof rule (coinductive over the per-TU reverse call graph): a function
// is confined to lane L iff it is annotated GDUR_CONFINED(L), or it has at
// least one in-TU caller and every caller is (recursively) confined to L.
// A function with no in-TU callers and no annotation is unproven — the
// tool cannot know which thread enters it, so the access is flagged.
// Constructors and destructors of the class that owns a confined field are
// exempt: the object is not yet (or no longer) shared when they run.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "checks.h"
#include "llvm/ADT/DenseMap.h"

namespace gdur_analyze {

using clang::CXXConstructorDecl;
using clang::CXXDestructorDecl;
using clang::CXXMethodDecl;
using clang::CXXRecordDecl;
using clang::FieldDecl;
using clang::FunctionDecl;

namespace {

enum class Proof : char { kProven, kRefuted, kInProgress };

struct Prover {
  TuModel* m;
  std::string lane;
  llvm::DenseMap<const FunctionDecl*, Proof> memo;

  Prover(TuModel* model, std::string l) : m(model), lane(std::move(l)) {}

  bool proven(const FunctionDecl* fn) {
    auto found = memo.find(fn);
    if (found != memo.end()) {
      // A cycle member is assumed confined while the cycle's external
      // entries are being checked — the greatest fixpoint: a loop with no
      // unproven way in cannot be entered from the wrong lane.
      return found->second != Proof::kRefuted;
    }
    memo[fn] = Proof::kInProgress;
    bool ok;
    if (auto ann = TuModel::annotation_of(fn, "gdur::confined:")) {
      ok = *ann == lane;
    } else {
      auto callers = m->callers().find(fn);
      ok = callers != m->callers().end() && !callers->second.empty();
      if (ok)
        for (const FunctionDecl* caller : callers->second)
          if (!proven(caller)) {
            ok = false;
            break;
          }
    }
    memo[fn] = ok ? Proof::kProven : Proof::kRefuted;
    return ok;
  }
};

bool is_lifecycle_exempt(const FunctionDecl* fn,
                         const clang::ValueDecl* target) {
  const auto* field = llvm::dyn_cast<FieldDecl>(target);
  if (field == nullptr) return false;
  const auto* owner = llvm::dyn_cast<CXXRecordDecl>(field->getParent());
  if (owner == nullptr) return false;
  const auto* method = llvm::dyn_cast<CXXMethodDecl>(fn);
  if (method == nullptr) return false;
  if (!llvm::isa<CXXConstructorDecl>(method) &&
      !llvm::isa<CXXDestructorDecl>(method))
    return false;
  return method->getParent()->getCanonicalDecl() ==
         owner->getCanonicalDecl();
}

}  // namespace

void check_confinement(TuModel& m, std::vector<Finding>& out) {
  // One prover (memo table) per distinct lane.
  std::map<std::string, std::unique_ptr<Prover>> provers;

  for (auto& entry : m.fns) {
    const FunctionDecl* fn = entry.first;
    for (const ConfinedAccess& access : entry.second.confined) {
      auto lane_opt =
          TuModel::annotation_of(access.target, "gdur::confined:");
      if (!lane_opt) continue;
      const std::string& lane = *lane_opt;
      if (is_lifecycle_exempt(fn, access.target)) continue;
      auto& prover = provers[lane];
      if (!prover) prover = std::make_unique<Prover>(&m, lane);
      if (prover->proven(fn)) continue;

      Finding f;
      f.check = kConfinementCheck;
      f.loc = access.loc;
      f.msg = "'" + access.target->getNameAsString() +
              "' is confined to lane '" + lane + "' but '" +
              TuModel::qual_name(fn) +
              "' is not proven to run there; annotate it GDUR_CONFINED(\"" +
              lane + "\") or route the access through a confined entry point";
      f.notes.push_back(
          {fn->getLocation(),
           "a function is proven confined when it is annotated, or when "
           "every in-TU caller chain above it reaches an annotated "
           "function"});
      out.push_back(std::move(f));
    }
  }
}

}  // namespace gdur_analyze

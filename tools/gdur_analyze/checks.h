// Check interface: each check is a pure query over a built TuModel that
// appends Findings. The driver (gdur_analyze.cpp) owns printing,
// suppression (`// gdur-analyze: allow(check) reason`) and exit status.
#pragma once

#include <string>
#include <vector>

#include "tu_model.h"

namespace gdur_analyze {

struct Note {
  clang::SourceLocation loc;
  std::string msg;
};

struct Finding {
  std::string check;  // e.g. "gdur-hotpath-reachability"
  clang::SourceLocation loc;
  std::string msg;
  std::vector<Note> notes;
};

inline const char* kHotpathCheck = "gdur-hotpath-reachability";
inline const char* kConfinementCheck = "gdur-thread-confinement";
inline const char* kDeterminismCheck = "gdur-determinism-escape";
inline const char* kSpecCheck = "gdur-spec-realization";

void check_hotpath(TuModel& m, std::vector<Finding>& out);
void check_confinement(TuModel& m, std::vector<Finding>& out);
void check_determinism(TuModel& m, std::vector<Finding>& out);
void check_spec(TuModel& m, std::vector<Finding>& out);

}  // namespace gdur_analyze

// gdur-analyze — standalone Clang tool hosting the four AST-accurate
// checks (DESIGN.md §16): gdur-hotpath-reachability,
// gdur-thread-confinement, gdur-determinism-escape, gdur-spec-realization.
//
// Built as a ClangTool binary rather than a clang-tidy `-load` module
// because Debian/Ubuntu do not package the clang-tidy plugin headers; the
// output format is clang-tidy's (`file:line:col: warning: ... [check]`) so
// editors and CI greps treat it identically.
//
// Suppressions: `// gdur-analyze: allow(check-name) reason` on the
// finding's primary line or the line above. The reason is mandatory — a
// bare allow is itself reported. The tag deliberately differs from
// `// gdur-lint: allow(...)` so the portable regex fallback and this tool
// never swallow each other's suppressions.
//
// Exit status: 0 clean, 1 findings, 2 tool/compilation failure.
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "checks.h"
#include "clang/AST/ASTConsumer.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/Error.h"
#include "llvm/Support/raw_ostream.h"

namespace {

llvm::cl::OptionCategory kCategory("gdur-analyze options");

llvm::cl::list<std::string> kOnlyChecks(
    "check",
    llvm::cl::desc("Run only the named check (repeatable); default: all"),
    llvm::cl::cat(kCategory));

struct Stats {
  unsigned findings = 0;
  unsigned suppressed = 0;
  std::set<std::string> seen;  // cross-TU dedup (headers repeat per TU)
};

bool check_enabled(const std::string& name) {
  if (kOnlyChecks.empty()) return true;
  for (const std::string& c : kOnlyChecks)
    if (c == name) return true;
  return false;
}

std::string line_at(const clang::SourceManager& sm, clang::FileID fid,
                    unsigned line) {
  if (line == 0) return {};
  bool invalid = false;
  llvm::StringRef buf = sm.getBufferData(fid, &invalid);
  if (invalid) return {};
  unsigned cur = 1;
  std::size_t start = 0;
  while (cur < line) {
    const std::size_t nl = buf.find('\n', start);
    if (nl == llvm::StringRef::npos) return {};
    start = nl + 1;
    ++cur;
  }
  const std::size_t end = buf.find('\n', start);
  return buf
      .substr(start,
              end == llvm::StringRef::npos ? llvm::StringRef::npos
                                           : end - start)
      .str();
}

/// Parses `// gdur-analyze: allow(a,b) reason` out of `text`. Returns true
/// when a tag is present; fills the allowed check names and whether a
/// non-empty reason follows.
bool parse_allow(llvm::StringRef text,
                 llvm::SmallVectorImpl<std::string>& checks,
                 bool& has_reason) {
  static const char kTag[] = "// gdur-analyze: allow(";
  const std::size_t pos = text.find(kTag);
  if (pos == llvm::StringRef::npos) return false;
  llvm::StringRef rest = text.substr(pos + sizeof(kTag) - 1);
  const std::size_t close = rest.find(')');
  if (close == llvm::StringRef::npos) return false;
  llvm::SmallVector<llvm::StringRef, 4> parts;
  rest.substr(0, close).split(parts, ',', -1, /*KeepEmpty=*/false);
  for (llvm::StringRef p : parts) checks.push_back(p.trim().str());
  has_reason = !rest.substr(close + 1).trim().empty();
  return true;
}

void report(clang::ASTContext& ctx, std::vector<gdur_analyze::Finding>& fs,
            Stats& stats) {
  const clang::SourceManager& sm = ctx.getSourceManager();
  for (const gdur_analyze::Finding& f : fs) {
    if (!check_enabled(f.check)) continue;
    const clang::SourceLocation loc = sm.getExpansionLoc(f.loc);
    if (loc.isInvalid() || sm.isInSystemHeader(loc)) continue;
    const clang::PresumedLoc ploc = sm.getPresumedLoc(loc);
    if (ploc.isInvalid()) continue;

    const std::string key = std::string(ploc.getFilename()) + ":" +
                            std::to_string(ploc.getLine()) + ":" + f.check +
                            ":" + f.msg;
    if (!stats.seen.insert(key).second) continue;

    // Suppression: the primary line or the line above it.
    const auto decomposed = sm.getDecomposedExpansionLoc(loc);
    bool suppressed = false;
    bool bad_allow = false;
    for (unsigned line : {ploc.getLine(), ploc.getLine() - 1}) {
      llvm::SmallVector<std::string, 4> allowed;
      bool has_reason = false;
      if (!parse_allow(line_at(sm, decomposed.first, line), allowed,
                       has_reason))
        continue;
      for (const std::string& name : allowed) {
        if (name != f.check) continue;
        if (has_reason)
          suppressed = true;
        else
          bad_allow = true;
      }
      if (suppressed || bad_allow) break;
    }
    if (suppressed) {
      ++stats.suppressed;
      continue;
    }

    auto pos = [&](clang::SourceLocation l) {
      const clang::PresumedLoc p = sm.getPresumedLoc(sm.getExpansionLoc(l));
      if (p.isInvalid()) return std::string("<unknown>");
      return std::string(p.getFilename()) + ":" +
             std::to_string(p.getLine()) + ":" +
             std::to_string(p.getColumn());
    };

    ++stats.findings;
    llvm::outs() << pos(f.loc) << ": warning: " << f.msg << " [" << f.check
                 << "]\n";
    if (bad_allow) {
      ++stats.findings;
      llvm::outs() << pos(f.loc)
                   << ": warning: suppression without a reason; write "
                      "'// gdur-analyze: allow("
                   << f.check << ") <reason>' [gdur-analyze-bad-allow]\n";
    }
    for (const gdur_analyze::Note& n : f.notes)
      llvm::outs() << pos(n.loc) << ": note: " << n.msg << "\n";
  }
  llvm::outs().flush();
}

class Consumer : public clang::ASTConsumer {
 public:
  explicit Consumer(Stats& stats) : stats_(stats) {}

  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    gdur_analyze::TuModel model;
    model.build(ctx);
    std::vector<gdur_analyze::Finding> findings;
    gdur_analyze::check_hotpath(model, findings);
    gdur_analyze::check_confinement(model, findings);
    gdur_analyze::check_determinism(model, findings);
    gdur_analyze::check_spec(model, findings);
    report(ctx, findings, stats_);
  }

 private:
  Stats& stats_;
};

class Action : public clang::ASTFrontendAction {
 public:
  explicit Action(Stats& stats) : stats_(stats) {}

  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    return std::make_unique<Consumer>(stats_);
  }

 private:
  Stats& stats_;
};

class Factory : public clang::tooling::FrontendActionFactory {
 public:
  explicit Factory(Stats& stats) : stats_(stats) {}

  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<Action>(stats_);
  }

 private:
  Stats& stats_;
};

}  // namespace

int main(int argc, const char** argv) {
  auto parser = clang::tooling::CommonOptionsParser::create(
      argc, argv, kCategory, llvm::cl::OneOrMore,
      "AST-grade interprocedural checks for the G-DUR middleware "
      "(hot-path reachability, thread confinement, determinism escapes, "
      "ProtocolSpec realization).");
  if (!parser) {
    llvm::errs() << llvm::toString(parser.takeError()) << "\n";
    return 2;
  }
  clang::tooling::ClangTool tool(parser->getCompilations(),
                                 parser->getSourcePathList());
  Stats stats;
  Factory factory(stats);
  const int status = tool.run(&factory);
  llvm::errs() << "gdur-analyze: " << stats.findings << " finding(s), "
               << stats.suppressed << " suppressed\n";
  if (stats.findings > 0) return 1;
  return status != 0 ? 2 : 0;
}

// gdur_live: run G-DUR protocols over real loopback TCP sockets and threads.
//
// Each site is a mailbox thread behind a full mesh of TCP connections;
// every protocol message travels as real bytes through net::codec. The
// recorded history is verified against the protocol's claimed criterion.
//
//   $ ./examples/gdur_live --protocol Walter --sites 3 --clients 16 --secs 3
//   $ ./examples/gdur_live --protocol all --secs 1
//
// Flags:
//   --protocol NAME   registry name (P-Store, S-DUR, GMU, Serrano, Walter,
//                     Jessy2pc, RC, ...) or "all" for the paper's seven
//   --sites N         number of sites (default 3)
//   --clients N       closed-loop client flows (default 16)
//   --secs S          measured wall-clock duration (default 2)
//   --workload A|B|C  YCSB-style mix (default A)
//   --ro R            read-only transaction ratio (default 0.8)
//   --rate TPS        open-loop Poisson arrivals instead of closed loops
//   --delay-scale D   emulated link delay = topology latency x D (default 0)
//   --coalesce        batch small protocol messages per destination
//                     (kBatch frames, flushed at mailbox-idle / size cap)
//   --seed N          workload seed (default 42)
//   --no-check        skip history checking
//   --obs             attach the observability plane (telemetry + flight
//                     recorder + stall watchdog + invariant monitor)
//   --snapshot PFX    with --obs: write PFX.json / PFX.prom snapshots every
//                     second and flight dumps to PFX.flight.txt
//
// Exit status: nonzero if any run violates its criterion, commits nothing,
// leaves a client hung, or (with --obs) trips the watchdog or an invariant.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "front/signals.h"
#include "live/live_runner.h"
#include "obs/plane.h"

using namespace gdur;

namespace {

const char* kAllProtocols[] = {"P-Store", "S-DUR",  "GMU", "Serrano",
                               "Walter",  "Jessy2pc", "RC"};

double arg_double(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", flag);
    std::exit(2);
  }
  return std::atof(argv[++i]);
}

}  // namespace

int main(int argc, char** argv) {
  // SIGTERM/SIGINT end the measurement window early and drain cleanly
  // (mailboxes flushed, history checked, final obs snapshot) instead of
  // killing the process mid-transaction. Exit stays 0 unless something
  // actually failed.
  front::install_shutdown_handler();
  live::LiveRunConfig cfg;
  std::string protocol = "P-Store";
  double ro = 0.8;
  std::string workload = "A";
  bool with_obs = false;
  std::string snapshot_prefix;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--protocol") == 0 && i + 1 < argc) {
      protocol = argv[++i];
    } else if (std::strcmp(a, "--sites") == 0) {
      cfg.sites = static_cast<int>(arg_double(argc, argv, i, a));
    } else if (std::strcmp(a, "--clients") == 0) {
      cfg.clients = static_cast<int>(arg_double(argc, argv, i, a));
    } else if (std::strcmp(a, "--secs") == 0) {
      cfg.secs = arg_double(argc, argv, i, a);
    } else if (std::strcmp(a, "--workload") == 0 && i + 1 < argc) {
      workload = argv[++i];
    } else if (std::strcmp(a, "--ro") == 0) {
      ro = arg_double(argc, argv, i, a);
    } else if (std::strcmp(a, "--rate") == 0) {
      cfg.open_loop_tps = arg_double(argc, argv, i, a);
    } else if (std::strcmp(a, "--delay-scale") == 0) {
      cfg.delay_scale = arg_double(argc, argv, i, a);
    } else if (std::strcmp(a, "--seed") == 0) {
      cfg.seed = static_cast<std::uint64_t>(arg_double(argc, argv, i, a));
    } else if (std::strcmp(a, "--coalesce") == 0) {
      cfg.coalesce = true;
    } else if (std::strcmp(a, "--no-check") == 0) {
      cfg.check = false;
    } else if (std::strcmp(a, "--obs") == 0) {
      with_obs = true;
    } else if (std::strcmp(a, "--snapshot") == 0 && i + 1 < argc) {
      with_obs = true;
      snapshot_prefix = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n", a);
      return 2;
    }
  }
  cfg.workload = workload == "B"   ? workload::WorkloadSpec::B(ro)
                 : workload == "C" ? workload::WorkloadSpec::C(ro)
                                   : workload::WorkloadSpec::A(ro);

  std::vector<std::string> protocols;
  if (protocol == "all") {
    protocols.assign(std::begin(kAllProtocols), std::end(kAllProtocols));
  } else {
    protocols.push_back(protocol);
  }

  std::printf("%-10s %-5s %10s %10s %9s %10s  %s\n", "protocol", "crit",
              "committed", "aborted", "tps", "msgs", "check");
  bool all_ok = true;
  for (const auto& p : protocols) {
    cfg.protocol = p;
    // One plane per run: counters and verdicts are per-protocol.
    std::unique_ptr<obs::ObsPlane> plane;
    if (with_obs) {
      obs::ObsPlaneConfig pc;
      pc.sites = cfg.sites;
      plane = std::make_unique<obs::ObsPlane>(pc);
      cfg.plane = plane.get();
      cfg.snapshot_prefix =
          protocols.size() > 1 && !snapshot_prefix.empty()
              ? snapshot_prefix + "." + p
              : snapshot_prefix;
    }
    const auto r = live::run_live(cfg);
    const bool ok = r.checker_ok && r.metrics.committed() > 0 &&
                    r.hung_clients == 0 && r.watchdog_trips == 0 &&
                    r.invariant_violations == 0;
    all_ok = all_ok && ok;
    std::printf("%-10s %-5s %10llu %10llu %9.0f %10llu  %s\n",
                r.protocol.c_str(), r.criterion.c_str(),
                static_cast<unsigned long long>(r.metrics.committed()),
                static_cast<unsigned long long>(r.metrics.aborted()),
                r.throughput_tps,
                static_cast<unsigned long long>(r.messages),
                !cfg.check        ? "skipped"
                : r.checker_ok    ? "clean"
                                  : r.checker_detail.c_str());
    if (r.hung_clients > 0)
      std::printf("  WARNING: %d client(s) hung at shutdown\n",
                  r.hung_clients);
    if (r.metrics.committed() == 0)
      std::printf("  WARNING: zero committed transactions\n");
    if (r.watchdog_trips > 0)
      std::printf("  WARNING: watchdog tripped %llu time(s)\n",
                  static_cast<unsigned long long>(r.watchdog_trips));
    if (r.invariant_violations > 0)
      std::printf("  WARNING: %llu invariant violation(s)\n",
                  static_cast<unsigned long long>(r.invariant_violations));
    cfg.plane = nullptr;
    if (r.interrupted) {
      std::printf("  interrupted: measurement window cut short, drained "
                  "cleanly\n");
      break;
    }
  }
  return all_ok ? 0 : 1;
}

// gdur_bench — command-line experiment runner.
//
// The Swiss-army knife a downstream user reaches for first: pick a
// protocol, a workload, a cluster shape and a load, get the paper-style
// metrics row. Every option maps 1:1 to a knob of the harness.
//
//   $ ./examples/gdur_bench --protocol Walter --workload A --ro 0.9
//         --sites 4 --rf 1 --clients 256 --window 3 --seed 7
//   $ ./examples/gdur_bench --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "protocols/protocols.h"

using namespace gdur;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --protocol NAME   protocol to run (default Jessy2pc; --list shows all)\n"
      "  --workload A|B|C  YCSB-like workload of Table 3 (default A)\n"
      "  --ro FRACTION     read-only transaction ratio (default 0.9)\n"
      "  --locality FRAC   fraction of single-site transactions (default 0)\n"
      "  --sites N         number of sites (default 4)\n"
      "  --rf N            replication factor: 1=DP, 2=DT (default 1)\n"
      "  --objects N       objects per site (default 100000)\n"
      "  --clients N       closed-loop client threads (default 256)\n"
      "  --sweep           sweep clients {64,128,...,2048} instead\n"
      "  --window SECONDS  measurement window (default 3)\n"
      "  --durable         enable the write-ahead persistence layer\n"
      "  --seed N          random seed (default 1)\n"
      "  --list            list available protocols and exit\n",
      argv0);
}

const char* kProtocols[] = {"P-Store",     "S-DUR",      "GMU",
                            "Serrano",     "Walter",     "Jessy2pc",
                            "RC",          "GMU*",       "GMU**",
                            "P-Store-LA",  "P-Store+2PC", "P-Store-FT",
                            "P-Store+Paxos", "RAMP"};

}  // namespace

int main(int argc, char** argv) {
  std::string protocol = "Jessy2pc";
  char workload = 'A';
  double ro = 0.9;
  double locality = 0.0;
  harness::ExperimentConfig cfg;
  cfg.clients = 256;
  cfg.window = seconds(3);
  bool sweep = false;

  for (int i = 1; i < argc; ++i) {
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--protocol") protocol = next();
    else if (arg == "--workload") workload = next()[0];
    else if (arg == "--ro") ro = std::atof(next());
    else if (arg == "--locality") locality = std::atof(next());
    else if (arg == "--sites") cfg.cluster.sites = std::atoi(next());
    else if (arg == "--rf") cfg.cluster.replication = std::atoi(next());
    else if (arg == "--objects")
      cfg.cluster.objects_per_site = std::strtoull(next(), nullptr, 10);
    else if (arg == "--clients") cfg.clients = std::atoi(next());
    else if (arg == "--sweep") sweep = true;
    else if (arg == "--window") cfg.window = seconds(std::atof(next()));
    else if (arg == "--durable") cfg.cluster.durable = true;
    else if (arg == "--seed") cfg.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--list") {
      for (const char* p : kProtocols) std::printf("%s\n", p);
      return 0;
    } else {
      usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  cfg.workload = workload == 'B'   ? workload::WorkloadSpec::B(ro)
                 : workload == 'C' ? workload::WorkloadSpec::C(ro)
                                   : workload::WorkloadSpec::A(ro);
  cfg.workload.locality = locality;

  core::ProtocolSpec spec;
  try {
    spec = protocols::by_name(protocol);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s (try --list)\n", e.what());
    return 2;
  }

  char title[160];
  std::snprintf(title, sizeof title,
                "%s, workload %c, %.0f%% read-only, %d sites, rf=%d%s",
                protocol.c_str(), workload, ro * 100, cfg.cluster.sites,
                cfg.cluster.replication, cfg.cluster.durable ? ", durable" : "");
  harness::print_header(title);
  if (sweep) {
    for (const auto& r : harness::run_sweep(
             spec, cfg, {64, 128, 256, 512, 1024, 2048}))
      harness::print_result(r);
  } else {
    harness::print_result(harness::run_experiment(spec, cfg));
  }
  return 0;
}

// gdur_site: one G-DUR site as its own OS process.
//
// The multi-process deployment runs one gdur_site per site; processes find
// each other over real TCP (each dials every peer, boot order free) and
// clients connect to each site's front door (front::FrontServer) with the
// GdurClient API. Contrast with gdur_live, which hosts every site in one
// process over loopback.
//
//   $ ./examples/gdur_site --config site0.conf
//
// Config file: one key=value per line, '#' comments. Keys:
//   sites=3                      total sites (required)
//   self=0                       this process's site id (required)
//   peer.0=127.0.0.1:7100        inter-site endpoint of site 0 (one per
//   peer.1=127.0.0.1:7101        site, required; self's entry is the port
//   peer.2=127.0.0.2:7102        this process binds)
//   protocol=P-Store             registry protocol name
//   client_port=0                front-door port (0 = ephemeral)
//   window=64                    per-session in-flight window
//   pushback_hi=512              cert-queue depth engaging pushback
//   pushback_lo=128              depth releasing it
//   objects_per_site=4096        keyspace
//   partitions_per_site=2
//   replication=1
//   shards_per_site=1
//   coalesce=0                   1 = batch small inter-site messages
//   history=site0.hist           history dump written at shutdown
//   snapshot=site0               obs snapshot prefix written at shutdown
//
// Prints "READY port=<front door port>" on stdout once serving (the
// deployment script parses it), then runs until SIGTERM/SIGINT: stops
// admitting, waits for in-flight requests to finish, writes the history
// dump + obs snapshot, and exits 0. A second signal force-exits.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "front/history_log.h"
#include "front/server.h"
#include "front/signals.h"
#include "live/live_cluster.h"
#include "live/live_runner.h"
#include "obs/plane.h"
#include "protocols/protocols.h"

using namespace gdur;

namespace {

struct SiteOptions {
  int sites = 0;
  SiteId self = kNoSite;
  std::vector<live::SiteEndpoint> peers;
  std::string protocol = "P-Store";
  std::uint16_t client_port = 0;
  std::uint32_t window = 64;
  std::size_t pushback_hi = 512;
  std::size_t pushback_lo = 128;
  std::uint64_t objects_per_site = 4096;
  int partitions_per_site = 2;
  int replication = 1;
  int shards_per_site = 1;
  std::uint64_t seed = 42;
  bool coalesce = false;
  std::string history_path;
  std::string snapshot_prefix;
};

bool parse_endpoint(const std::string& v, live::SiteEndpoint& ep) {
  const auto colon = v.rfind(':');
  if (colon == std::string::npos) return false;
  ep.host = v.substr(0, colon);
  ep.port = static_cast<std::uint16_t>(std::stoi(v.substr(colon + 1)));
  return !ep.host.empty() && ep.port != 0;
}

bool load_config(const std::string& path, SiteOptions& opt) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "gdur_site: cannot open config %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      const auto e = s.find_last_not_of(" \t\r");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    if (key.empty() || val.empty()) continue;
    if (key == "sites") {
      opt.sites = std::stoi(val);
      opt.peers.resize(static_cast<std::size_t>(opt.sites));
    } else if (key == "self") {
      opt.self = static_cast<SiteId>(std::stoul(val));
    } else if (key.rfind("peer.", 0) == 0) {
      const auto idx = static_cast<std::size_t>(std::stoul(key.substr(5)));
      if (idx >= opt.peers.size()) opt.peers.resize(idx + 1);
      if (!parse_endpoint(val, opt.peers[idx])) {
        std::fprintf(stderr, "gdur_site: bad endpoint %s\n", val.c_str());
        return false;
      }
    } else if (key == "protocol") {
      opt.protocol = val;
    } else if (key == "client_port") {
      opt.client_port = static_cast<std::uint16_t>(std::stoul(val));
    } else if (key == "window") {
      opt.window = static_cast<std::uint32_t>(std::stoul(val));
    } else if (key == "pushback_hi") {
      opt.pushback_hi = std::stoul(val);
    } else if (key == "pushback_lo") {
      opt.pushback_lo = std::stoul(val);
    } else if (key == "objects_per_site") {
      opt.objects_per_site = std::stoull(val);
    } else if (key == "partitions_per_site") {
      opt.partitions_per_site = std::stoi(val);
    } else if (key == "replication") {
      opt.replication = std::stoi(val);
    } else if (key == "shards_per_site") {
      opt.shards_per_site = std::stoi(val);
    } else if (key == "seed") {
      opt.seed = std::stoull(val);
    } else if (key == "coalesce") {
      opt.coalesce = val != "0" && val != "false";
    } else if (key == "history") {
      opt.history_path = val;
    } else if (key == "snapshot") {
      opt.snapshot_prefix = val;
    } else {
      std::fprintf(stderr, "gdur_site: unknown key %s\n", key.c_str());
      return false;
    }
  }
  if (opt.sites < 2 || opt.self == kNoSite ||
      opt.self >= static_cast<SiteId>(opt.sites)) {
    std::fprintf(stderr, "gdur_site: need sites>=2 and a valid self\n");
    return false;
  }
  for (int s = 0; s < opt.sites; ++s) {
    if (opt.peers[static_cast<std::size_t>(s)].port == 0) {
      std::fprintf(stderr, "gdur_site: missing peer.%d endpoint\n", s);
      return false;
    }
  }
  return true;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: gdur_site --config FILE\n");
      return 2;
    }
  }
  SiteOptions opt;
  if (config_path.empty() || !load_config(config_path, opt)) return 2;

  front::install_shutdown_handler();

  obs::ObsPlaneConfig pc;
  pc.sites = opt.sites;
  obs::ObsPlane plane(pc);

  live::LiveConfig lc;
  lc.base.sites = opt.sites;
  lc.base.replication = opt.replication;
  lc.base.objects_per_site = opt.objects_per_site;
  lc.base.partitions_per_site = opt.partitions_per_site;
  lc.base.shards_per_site = opt.shards_per_site;
  lc.base.seed = opt.seed;
  lc.base.plane = &plane;
  lc.self = opt.self;
  lc.peers = opt.peers;
  lc.coalesce = opt.coalesce;

  std::fprintf(stderr, "gdur_site: site %u/%d connecting mesh...\n",
               static_cast<unsigned>(opt.self), opt.sites);
  live::LiveCluster cluster(lc, protocols::by_name(opt.protocol));

  front::HistoryDumpHeader hdr;
  hdr.protocol = opt.protocol;
  hdr.criterion = live::criterion_of(opt.protocol);
  hdr.sites = static_cast<std::uint32_t>(opt.sites);
  hdr.replication = static_cast<std::uint32_t>(opt.replication);
  hdr.objects = cluster.partitioner().objects();
  hdr.partitions_per_site = static_cast<std::uint32_t>(opt.partitions_per_site);
  hdr.self = opt.self;
  front::HistoryLogWriter hist(hdr);
  cluster.set_install_observer(
      [&hist](const core::Cluster::InstallEvent& e) { hist.add_install(e); });

  cluster.start();

  front::FrontConfig fc;
  fc.site = opt.self;
  fc.port = opt.client_port;
  fc.window = opt.window;
  fc.pushback_hi = opt.pushback_hi;
  fc.pushback_lo = opt.pushback_lo;
  front::FrontServer server(cluster, fc);
  server.set_stats(&plane.slot(opt.self));
  server.set_observer([&hist](const core::TxnRecord& t, bool committed,
                              SimTime response) {
    hist.add_txn(t, committed, response);
  });
  server.start();

  std::printf("READY port=%u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  while (!front::shutdown_requested()) {
    // gdur-lint: allow(live/blocking-call) main-thread service loop, not runtime code
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Drain: stop admitting (reactor down — clients see the close), let
  // in-flight requests finish on the site thread, then tear down.
  std::fprintf(stderr, "gdur_site: draining site %u...\n",
               static_cast<unsigned>(opt.self));
  server.stop();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.requests_inflight() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    // gdur-lint: allow(live/blocking-call) drain poll on the main thread, not runtime code
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const bool drained = server.requests_inflight() == 0;
  cluster.stop();

  if (!opt.snapshot_prefix.empty()) {
    write_text(opt.snapshot_prefix + ".json",
               plane.snapshot_json(cluster.now()));
    write_text(opt.snapshot_prefix + ".prom",
               plane.snapshot_prometheus(cluster.now()));
  }
  bool dumped = true;
  if (!opt.history_path.empty()) {
    dumped = hist.write_file(opt.history_path);
    if (!dumped)
      std::fprintf(stderr, "gdur_site: FAILED to write %s\n",
                   opt.history_path.c_str());
  }
  std::fprintf(stderr,
               "gdur_site: site %u done, served %llu txns (%s drain)\n",
               static_cast<unsigned>(opt.self),
               static_cast<unsigned long long>(hist.txn_count()),
               drained ? "clean" : "timed-out");
  // Nonzero exit only on real failure: an undrained request or a failed
  // dump is one, an operator-requested shutdown is not.
  return (drained && dumped) ? 0 : 1;
}

// Example: watching consistency anomalies appear and disappear as the
// criterion changes — the "jungle of consistency criteria" of the paper's
// introduction, made concrete.
//
// We run the same contended banking-style workload under five protocols and
// feed the recorded histories to the checker, reporting which anomalies
// (write-skew cycles, lost updates, fractured reads) each criterion admits.
//
//   $ ./examples/consistency_anomalies
#include <cstdio>
#include <memory>
#include <vector>

#include "checker/history.h"
#include "protocols/protocols.h"
#include "workload/client.h"

using namespace gdur;

namespace {

struct Report {
  std::size_t committed = 0;
  double abort_pct = 0;
  bool serializable = false;
  bool update_serializable = false;
  bool no_lost_updates = false;   // ww exclusion
  bool no_fractured_reads = false;
};

Report run(const core::ProtocolSpec& spec) {
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.objects_per_site = 32;  // 128 hot "accounts": anomalies show quickly
  core::Cluster cluster(cfg, spec);

  checker::History history;
  history.attach(cluster);
  harness::Metrics metrics;

  std::vector<std::unique_ptr<workload::ClientActor>> clients;
  for (int i = 0; i < 24; ++i) {
    clients.push_back(std::make_unique<workload::ClientActor>(
        cluster, static_cast<SiteId>(i % 4), workload::WorkloadSpec::B(0.5),
        metrics, mix64(7'000 + i)));
    clients.back()->set_observer(
        [&](const core::TxnRecord& t, bool committed) {
          history.record_txn(t, committed, cluster.simulator().now());
        });
    clients.back()->start(i * microseconds(503));
  }
  cluster.simulator().run_until(seconds(2));

  Report r;
  r.committed = history.committed_count();
  r.abort_pct = metrics.abort_ratio_pct();
  r.serializable = history.check_serializable().ok;
  r.update_serializable = history.check_update_serializable().ok;
  r.no_lost_updates = history.check_ww_exclusion().ok;
  r.no_fractured_reads = history.check_consistent_snapshots().ok;
  return r;
}

const char* mark(bool ok) { return ok ? "  yes" : "   NO"; }

}  // namespace

int main() {
  std::printf(
      "# The same contended workload, five criteria (128 objects, 24 "
      "clients, 50%% updates)\n\n");
  std::printf("%-10s %9s %8s %6s %6s %9s %10s\n", "protocol", "committed",
              "abort%", "SER", "US", "ww-excl", "no-fract");
  for (const char* name : {"P-Store", "GMU", "Walter", "Jessy2pc", "RAMP",
                           "RC"}) {
    const auto r = run(protocols::by_name(name));
    std::printf("%-10s %9zu %7.1f%% %6s %6s %9s %10s\n", name, r.committed,
                r.abort_pct, mark(r.serializable),
                mark(r.update_serializable), mark(r.no_lost_updates),
                mark(r.no_fractured_reads));
  }
  std::printf(
      "\n# Reading the table:\n"
      "#  * P-Store (SER) serializes everything — and pays with the abort\n"
      "#    rate. (ww-excl can still fail under SER: concurrent blind writes\n"
      "#    are fine when serialized; they are not lost updates.)\n"
      "#  * GMU (US) keeps updates serializable; queries may observe\n"
      "#    non-monotonic (but consistent) snapshots.\n"
      "#  * Walter (PSI) / Jessy2pc (NMSI) allow write skew (SER may fail)\n"
      "#    but never lose an update or fracture a snapshot.\n"
      "#  * RAMP only promises atomic visibility: concurrent writes race.\n"
      "#  * RC promises nothing beyond reading committed data.\n");
  return 0;
}

// Quickstart: assemble a protocol from plug-ins, run a small geo-replicated
// cluster, execute a few transactions by hand, then measure a workload.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/cluster.h"
#include "harness/experiment.h"
#include "protocols/protocols.h"
#include "workload/workload.h"

using namespace gdur;

int main() {
  // ---------------------------------------------------------------------
  // 1. Pick a protocol from the library — here Jessy2pc (NMSI) — and spin
  //    up a 4-site disaster-prone cluster (one replica per site, objects
  //    stored at a single site each).
  // ---------------------------------------------------------------------
  core::ClusterConfig cfg;
  cfg.sites = 4;
  cfg.replication = 1;
  cfg.objects_per_site = 1000;
  core::Cluster cluster(cfg, protocols::jessy2pc());

  // ---------------------------------------------------------------------
  // 2. Run one interactive transaction by hand. The API is asynchronous:
  //    each operation takes a continuation, and the simulator drives
  //    everything deterministically.
  // ---------------------------------------------------------------------
  bool done = false;
  cluster.begin(/*coord=*/0, [&](core::MutTxnPtr t) {
    cluster.read(0, t, /*x=*/1, [&, t](bool ok1) {
      std::printf("read x=1: %s\n", ok1 ? "ok" : "failed");
      cluster.write(0, t, /*x=*/2, [&, t] {
        cluster.commit(0, t, [&, t](bool committed) {
          std::printf("transaction %s: %s\n", t->id.str().c_str(),
                      committed ? "COMMITTED" : "ABORTED");
          done = true;
        });
      });
    });
  });
  cluster.simulator().run();
  if (!done) {
    std::printf("ERROR: transaction did not terminate\n");
    return 1;
  }

  // ---------------------------------------------------------------------
  // 3. Measure a workload point: Workload A, 90% read-only, 64 clients.
  // ---------------------------------------------------------------------
  harness::ExperimentConfig ecfg;
  ecfg.cluster.sites = 4;
  ecfg.cluster.objects_per_site = 10'000;
  ecfg.workload = workload::WorkloadSpec::A(0.9);
  ecfg.clients = 64;
  ecfg.warmup = seconds(0.5);
  ecfg.window = seconds(2);

  harness::print_header("Quickstart: Jessy2pc vs P-Store, workload A");
  for (const char* name : {"Jessy2pc", "P-Store"}) {
    const auto r = harness::run_experiment(protocols::by_name(name), ecfg);
    harness::print_result(r);
  }
  return 0;
}

// Example: a geo-replicated social-network backend on G-DUR.
//
// This is the scenario the PSI/NMSI line of work motivates (Walter, SOSP'11;
// §6.4-6.5 of the G-DUR paper): user profiles and walls partitioned across
// data centers, with "post to wall", "follow", and "read timeline"
// transactions. We run the same application against two protocols —
// Serrano (SI, non-genuine) and Jessy2pc (NMSI, genuine) — and report how
// consistency choice changes latency and throughput, all through the public
// G-DUR API.
//
//   $ ./examples/social_network
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "harness/metrics.h"
#include "protocols/protocols.h"

using namespace gdur;

namespace {

// Object-id layout: per user, a profile object and a wall object.
constexpr std::uint64_t kUsers = 20'000;
ObjectId profile_of(std::uint64_t user) { return user * 2; }
ObjectId wall_of(std::uint64_t user) { return user * 2 + 1; }

/// One simulated application client pinned to a site, issuing a mix of
/// social-network transactions in closed loop.
class AppClient {
 public:
  AppClient(core::Cluster& cl, SiteId site, std::uint64_t seed,
            harness::Metrics& metrics)
      : cl_(cl), site_(site), rng_(seed), metrics_(metrics) {}

  void start(SimTime at) {
    cl_.simulator().at(at, [this] { next(); });
  }

 private:
  void next() {
    begin_ = cl_.simulator().now();
    const double dice = rng_.next_double();
    me_ = rng_.next_below(kUsers);
    other_ = rng_.next_below(kUsers);
    if (dice < 0.70) {
      read_timeline();
    } else if (dice < 0.90) {
      post_to_wall();
    } else {
      follow();
    }
  }

  /// Query: read my profile and two walls (wait-free under both protocols).
  void read_timeline() {
    cl_.begin(site_, [this](core::MutTxnPtr t) {
      cl_.read(site_, t, profile_of(me_), [this, t](bool ok) {
        if (!ok) return retry();
        cl_.read(site_, t, wall_of(me_), [this, t](bool ok2) {
          if (!ok2) return retry();
          cl_.read(site_, t, wall_of(other_), [this, t](bool ok3) {
            if (!ok3) return retry();
            cl_.commit(site_, t, [this](bool c) { finish(c, true); });
          });
        });
      });
    });
  }

  /// Update: read my profile, append to a friend's wall.
  void post_to_wall() {
    cl_.begin(site_, [this](core::MutTxnPtr t) {
      cl_.read(site_, t, profile_of(me_), [this, t](bool ok) {
        if (!ok) return retry();
        cl_.write(site_, t, wall_of(other_), [this, t] {
          cl_.commit(site_, t, [this](bool c) { finish(c, false); });
        });
      });
    });
  }

  /// Update: read both profiles, update both (mutual follow edge).
  void follow() {
    cl_.begin(site_, [this](core::MutTxnPtr t) {
      cl_.read(site_, t, profile_of(me_), [this, t](bool ok) {
        if (!ok) return retry();
        cl_.read(site_, t, profile_of(other_), [this, t](bool ok2) {
          if (!ok2) return retry();
          cl_.write(site_, t, profile_of(me_), [this, t] {
            cl_.write(site_, t, profile_of(other_), [this, t] {
              cl_.commit(site_, t, [this](bool c) { finish(c, false); });
            });
          });
        });
      });
    });
  }

  void retry() {
    ++metrics_.exec_failures;
    next();
  }

  void finish(bool committed, bool read_only) {
    if (committed) {
      (read_only ? metrics_.committed_ro : metrics_.committed_upd)++;
      metrics_.txn_latency.add(cl_.simulator().now() - begin_);
    } else {
      (read_only ? metrics_.aborted_ro : metrics_.aborted_upd)++;
    }
    next();
  }

  core::Cluster& cl_;
  SiteId site_;
  Rng rng_;
  harness::Metrics& metrics_;
  SimTime begin_ = 0;
  std::uint64_t me_ = 0, other_ = 0;
};

void run_app(const char* protocol) {
  core::ClusterConfig cfg;
  cfg.sites = 4;            // four data centers
  cfg.replication = 2;      // survive a data-center outage
  cfg.objects_per_site = kUsers * 2 / 4;
  core::Cluster cluster(cfg, protocols::by_name(protocol));

  harness::Metrics metrics;
  std::vector<std::unique_ptr<AppClient>> clients;
  for (int i = 0; i < 256; ++i) {
    clients.push_back(std::make_unique<AppClient>(
        cluster, static_cast<SiteId>(i % 4), mix64(1000 + i), metrics));
    clients.back()->start(i * microseconds(113));
  }

  cluster.simulator().run_until(seconds(1));   // warmup
  metrics.reset();
  cluster.simulator().run_until(seconds(4));

  std::printf("  %-10s %10.0f tps   %8.1f ms avg latency   %6.2f%% aborts\n",
              protocol, metrics.committed() / 3.0,
              metrics.txn_latency.mean_ms(), metrics.abort_ratio_pct());
}

}  // namespace

int main() {
  std::printf("# Social network on G-DUR: 4 data centers, rf=2, 256 clients\n");
  std::printf("# 70%% timeline reads, 20%% wall posts, 10%% follow edges\n");
  for (const char* p : {"Serrano", "Walter", "Jessy2pc"}) run_app(p);
  std::printf("# Takeaway: with identical application code, swapping the\n"
              "# consistency plug-ins moves throughput and latency exactly as\n"
              "# the paper's geo-replication argument predicts (SI < PSI <= NMSI).\n");
  return 0;
}

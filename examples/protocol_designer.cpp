// Example: designing a *new* transactional protocol with G-DUR plug-ins.
//
// This is the workflow §8.3-8.4 of the paper advocates: start from an
// existing protocol, swap realization points, and measure the effect —
// here we build "Walter-GC", a PSI protocol that replaces Walter's 2PC
// commitment with genuine atomic multicast ordering, and compare the two
// variants plus the original on one workload. The whole protocol fits in
// a dozen lines of plug-in configuration.
//
//   $ ./examples/protocol_designer
#include <cstdio>

#include "core/certifiers.h"
#include "harness/experiment.h"
#include "protocols/protocols.h"

using namespace gdur;

namespace {

/// A new protocol assembled from library plug-ins: PSI semantics (VTS
/// snapshots + write-write certification + background propagation, like
/// Walter) but terminated through genuine atomic multicast with a-priori
/// conflict ordering (like P-Store). Under contention, ordering
/// write-write conflicts instead of preemptively aborting them should trade
/// latency for a lower abort rate.
core::ProtocolSpec walter_gc() {
  auto s = protocols::walter();
  s.name = "Walter-GC";
  s.ac = core::AcKind::kGroupComm;
  s.xcast = core::XcastKind::kAtomicMulticast;
  s.vote_snd = core::VoteScope::kCertifying;
  s.vote_recv = core::VoteScope::kWriteSet;
  return s;
}

void run(const core::ProtocolSpec& spec, harness::ExperimentConfig cfg) {
  for (int clients : {128, 512, 1024}) {
    cfg.clients = clients;
    harness::print_result(harness::run_experiment(spec, cfg));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  harness::ExperimentConfig cfg;
  cfg.cluster.sites = 4;
  cfg.cluster.objects_per_site = 2'500;  // contended: aborts matter
  cfg.workload = workload::WorkloadSpec::C(0.7);
  cfg.warmup = seconds(0.5);
  cfg.window = seconds(2);

  harness::print_header(
      "Designing a protocol: Walter (2PC) vs Walter-GC (atomic multicast), "
      "zipfian workload C, 70% read-only");
  run(protocols::walter(), cfg);
  run(walter_gc(), cfg);
  run(protocols::jessy2pc(), cfg);

  std::printf(
      "# Walter-GC pays multicast ordering latency but avoids 2PC's\n"
      "# preemptive aborts under write contention — the same trade-off the\n"
      "# paper quantifies in §8.5, demonstrated here on a protocol that did\n"
      "# not exist before this file.\n");
  return 0;
}

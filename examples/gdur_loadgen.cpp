// gdur_loadgen: external load generator for a multi-process G-DUR cluster.
//
// Connects GdurClient sessions to one or more gdur_site front doors and
// drives the paper's YCSB-style mixes against them, measuring per-request
// latency from the outside — the client-visible numbers, not the server's
// own accounting.
//
//   $ ./examples/gdur_loadgen --site 127.0.0.1:7200 --site 127.0.0.1:7201
//        [--clients 8] [--secs 5]
//
// Flags:
//   --site HOST:PORT  front door of one site (repeat per site; clients are
//                     assigned round-robin)
//   --clients N       closed-loop flows, one session each (default 8)
//   --secs S          run duration (default 5; 0 = until --txns)
//   --txns N          stop after N completed transactions (0 = until --secs)
//   --rate TPS        open-loop Poisson arrivals of one-shot stored
//                     transactions instead of closed loops; refusals
//                     (window full / pushback) are counted as shed, never
//                     queued
//   --stored          closed loop, but one-shot stored txns instead of
//                     interactive begin/read/write/commit
//   --workload A|B|C  mix (default A)   --ro R  read-only ratio (default 0.8)
//   --objects N       total keyspace, must match the cluster config
//                     (default: sites x 4096)
//   --partitions P    partitions per site (default 2, must match)
//   --replication R   (default 1, must match)
//   --seed N          workload seed (default 7)
//   --json FILE       write the result object to FILE as well as stdout
//
// Output: one JSON object with committed/aborted/shed counts, throughput,
// and client-observed latency percentiles. Exit 0 iff every session
// connected and at least one transaction committed.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "front/client.h"
#include "front/signals.h"
#include "harness/metrics.h"
#include "store/partitioner.h"
#include "workload/workload.h"

using namespace gdur;

namespace {

struct Target {
  std::string host;
  std::uint16_t port = 0;
};

struct Options {
  std::vector<Target> sites;
  int clients = 8;
  double secs = 5.0;
  std::uint64_t txns = 0;
  double rate = 0.0;
  bool stored = false;
  std::string workload = "A";
  double ro = 0.8;
  std::uint64_t objects = 0;
  int partitions = 2;
  int replication = 1;
  std::uint64_t seed = 7;
  std::string json_path;
};

/// One flow's results; open-loop completions land here from the reader
/// thread, so the accumulator is locked.
struct FlowStats {
  std::mutex mu;
  harness::Metrics m;
  std::uint64_t shed = 0;

  void done(bool committed, bool read_only, SimDuration lat) {
    std::lock_guard<std::mutex> g(mu);
    if (committed) {
      (read_only ? m.committed_ro : m.committed_upd)++;
      m.txn_latency.add(lat);
    } else {
      (read_only ? m.aborted_ro : m.aborted_upd)++;
    }
  }
};

std::atomic<std::uint64_t> g_completed{0};
std::atomic<bool> g_stop{false};

SimDuration since_ns(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool budget_spent(const Options& opt) {
  return opt.txns > 0 &&
         g_completed.load(std::memory_order_relaxed) >= opt.txns;
}

/// Interactive flow: keys issued one at a time, like the in-process
/// harness's client loop. A failed read/write still commits to release the
/// server-side handle; the verdict is already a foregone abort.
void run_interactive(front::GdurClient& c, workload::Generator& gen,
                     FlowStats& fs, const Options& opt) {
  while (!g_stop.load(std::memory_order_relaxed) && !budget_spent(opt)) {
    const auto prof = gen.next();
    const auto t0 = std::chrono::steady_clock::now();
    const auto h = c.begin_sync();
    if (!h) return;  // connection gone
    bool alive = true;
    for (const auto x : prof.reads)
      if (!c.read_sync(*h, x)) {
        alive = false;
        break;
      }
    if (alive)
      for (const auto x : prof.writes)
        if (!c.write_sync(*h, x)) {
          alive = false;
          break;
        }
    const bool committed = c.commit_sync(*h) && alive;
    fs.done(committed, prof.read_only, since_ns(t0));
    g_completed.fetch_add(1, std::memory_order_relaxed);
  }
}

void run_stored(front::GdurClient& c, workload::Generator& gen, FlowStats& fs,
                const Options& opt) {
  while (!g_stop.load(std::memory_order_relaxed) && !budget_spent(opt)) {
    const auto prof = gen.next();
    const auto t0 = std::chrono::steady_clock::now();
    const bool committed = c.stored_sync(prof.reads, prof.writes);
    if (!c.connected()) return;
    fs.done(committed, prof.read_only, since_ns(t0));
    g_completed.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Open loop: Poisson arrivals of pipelined stored transactions at
/// rate/flows each. try_submit never blocks — when the window is full or
/// the server pushed back, the arrival is shed and counted, keeping the
/// offered rate honest under overload.
void run_open_loop(front::GdurClient& c, workload::Generator& gen,
                   FlowStats& fs, const Options& opt, double flow_rate,
                   Rng& rng) {
  using clock = std::chrono::steady_clock;
  auto next_arrival = clock::now();
  while (!g_stop.load(std::memory_order_relaxed) && !budget_spent(opt)) {
    const double gap_s =
        -std::log(1.0 - rng.next_double()) / std::max(flow_rate, 1e-9);
    next_arrival += std::chrono::nanoseconds(
        static_cast<std::int64_t>(gap_s * 1e9));
    std::this_thread::sleep_until(next_arrival);
    if (g_stop.load(std::memory_order_relaxed)) break;
    const auto prof = gen.next();
    const auto t0 = clock::now();
    const bool ro = prof.read_only;
    const bool sent = c.try_submit(
        net::codec::ClientOp::kStored, 0, 0, prof.reads, prof.writes,
        [&fs, t0, ro](const front::GdurClient::Resp& r) {
          fs.done(r.ok, ro, since_ns(t0));
          g_completed.fetch_add(1, std::memory_order_relaxed);
        });
    if (!sent) {
      if (!c.connected()) return;
      std::lock_guard<std::mutex> g(fs.mu);
      ++fs.shed;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--site") == 0) {
      const std::string v = val();
      const auto colon = v.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "bad --site %s (want HOST:PORT)\n", v.c_str());
        return 2;
      }
      opt.sites.push_back(
          {v.substr(0, colon),
           static_cast<std::uint16_t>(std::stoi(v.substr(colon + 1)))});
    } else if (std::strcmp(a, "--clients") == 0) {
      opt.clients = std::atoi(val());
    } else if (std::strcmp(a, "--secs") == 0) {
      opt.secs = std::atof(val());
    } else if (std::strcmp(a, "--txns") == 0) {
      opt.txns = std::strtoull(val(), nullptr, 10);
    } else if (std::strcmp(a, "--rate") == 0) {
      opt.rate = std::atof(val());
    } else if (std::strcmp(a, "--stored") == 0) {
      opt.stored = true;
    } else if (std::strcmp(a, "--workload") == 0) {
      opt.workload = val();
    } else if (std::strcmp(a, "--ro") == 0) {
      opt.ro = std::atof(val());
    } else if (std::strcmp(a, "--objects") == 0) {
      opt.objects = std::strtoull(val(), nullptr, 10);
    } else if (std::strcmp(a, "--partitions") == 0) {
      opt.partitions = std::atoi(val());
    } else if (std::strcmp(a, "--replication") == 0) {
      opt.replication = std::atoi(val());
    } else if (std::strcmp(a, "--seed") == 0) {
      opt.seed = std::strtoull(val(), nullptr, 10);
    } else if (std::strcmp(a, "--json") == 0) {
      opt.json_path = val();
    } else {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n", a);
      return 2;
    }
  }
  if (opt.sites.empty()) {
    std::fprintf(stderr, "gdur_loadgen: need at least one --site\n");
    return 2;
  }
  if (opt.secs <= 0 && opt.txns == 0) {
    std::fprintf(stderr, "gdur_loadgen: need --secs > 0 or --txns > 0\n");
    return 2;
  }
  const int sites = static_cast<int>(opt.sites.size());
  if (opt.objects == 0)
    opt.objects = static_cast<std::uint64_t>(sites) * 4096;

  // The generator needs the cluster's partitioner shape (total keyspace +
  // placement) to produce the same global transactions the in-process
  // harness would.
  store::Partitioner part(sites, opt.replication, opt.objects,
                          opt.partitions);
  const auto spec = opt.workload == "B" ? workload::WorkloadSpec::B(opt.ro)
                    : opt.workload == "C"
                        ? workload::WorkloadSpec::C(opt.ro)
                        : workload::WorkloadSpec::A(opt.ro);

  front::install_shutdown_handler();

  // Connect every flow's session up front; a site still booting is retried
  // inside connect().
  std::vector<std::unique_ptr<front::GdurClient>> clients;
  for (int i = 0; i < opt.clients; ++i) {
    const auto& tgt = opt.sites[static_cast<std::size_t>(i % sites)];
    front::ClientConfig cc;
    cc.host = tgt.host;
    cc.port = tgt.port;
    clients.push_back(std::make_unique<front::GdurClient>(cc));
    if (!clients.back()->connect()) {
      std::fprintf(stderr, "gdur_loadgen: cannot connect to %s:%u\n",
                   tgt.host.c_str(), static_cast<unsigned>(tgt.port));
      return 1;
    }
  }
  std::fprintf(stderr, "gdur_loadgen: %d flows connected (protocol %s)\n",
               opt.clients, clients[0]->protocol().c_str());

  std::vector<FlowStats> stats(static_cast<std::size_t>(opt.clients));
  std::vector<Rng> rngs;
  for (int i = 0; i < opt.clients; ++i)
    rngs.emplace_back(opt.seed * 7919 + static_cast<std::uint64_t>(i));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < opt.clients; ++i) {
    threads.emplace_back([&clients, &stats, &rngs, &part, &spec, &opt, i] {
      auto& c = *clients[static_cast<std::size_t>(i)];
      auto& fs = stats[static_cast<std::size_t>(i)];
      workload::Generator gen(spec, part, c.site(),
                              opt.seed + static_cast<std::uint64_t>(i));
      if (opt.rate > 0)
        run_open_loop(c, gen, fs, opt, opt.rate / opt.clients,
                      rngs[static_cast<std::size_t>(i)]);
      else if (opt.stored)
        run_stored(c, gen, fs, opt);
      else
        run_interactive(c, gen, fs, opt);
    });
  }

  // Main thread ends the run: duration elapsed, budget reached, or signal.
  while (!g_stop.load(std::memory_order_relaxed)) {
    if (front::shutdown_requested() || budget_spent(opt) ||
        (opt.secs > 0 && to_seconds(since_ns(t0)) >= opt.secs))
      g_stop.store(true, std::memory_order_relaxed);
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& t : threads) t.join();
  const double wall = to_seconds(since_ns(t0));
  // Close after joining so pipelined responses still in flight fail fast
  // rather than hanging the flows.
  std::uint64_t pushbacks = 0;
  for (auto& c : clients) {
    pushbacks += c->pushbacks();
    c->close();
  }

  harness::Metrics m;
  std::uint64_t shed = 0;
  for (auto& fs : stats) {
    std::lock_guard<std::mutex> g(fs.mu);
    m.merge_from(fs.m);
    shed += fs.shed;
  }
  const double tps =
      wall > 0 ? static_cast<double>(m.committed()) / wall : 0.0;

  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\"protocol\": \"%s\", \"sites\": %d, \"clients\": %d, "
      "\"mode\": \"%s\", \"offered_tps\": %.1f, \"secs\": %.3f,\n"
      " \"committed\": %llu, \"aborted\": %llu, \"shed\": %llu, "
      "\"committed_tps\": %.1f, \"pushbacks\": %llu,\n"
      " \"latency_ms\": {\"mean\": %.3f, \"p50\": %.3f, \"p99\": %.3f, "
      "\"max\": %.3f}}\n",
      clients[0]->protocol().c_str(), sites, opt.clients,
      opt.rate > 0 ? "open" : (opt.stored ? "stored" : "interactive"),
      opt.rate, wall, static_cast<unsigned long long>(m.committed()),
      static_cast<unsigned long long>(m.aborted()),
      static_cast<unsigned long long>(shed), tps,
      static_cast<unsigned long long>(pushbacks), m.txn_latency.mean_ms(),
      m.txn_latency.percentile_ms(0.5), m.txn_latency.percentile_ms(0.99),
      m.txn_latency.max_ms());
  std::fputs(buf, stdout);
  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    out << buf;
  }
  return m.committed() > 0 ? 0 : 1;
}

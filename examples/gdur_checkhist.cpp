// gdur_checkhist: merge per-process history dumps and check the criterion.
//
// Each gdur_site process only witnesses its own slice of a multi-process
// run — its clients' outcomes and its replica's installs. At drain every
// site writes a dump (front::HistoryLogWriter); this tool merges them,
// rebuilds the partitioner from the embedded run header, and runs the
// protocol's claimed criterion check over the union, exactly like the
// in-process harness does at the end of a gdur_live run.
//
//   $ ./examples/gdur_checkhist site0.hist site1.hist site2.hist
//
// Exit: 0 clean, 1 criterion violation, 2 unreadable/mismatched dumps.
#include <cstdio>
#include <string>
#include <vector>

#include "checker/history.h"
#include "front/history_log.h"
#include "store/partitioner.h"

using namespace gdur;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: gdur_checkhist DUMP [DUMP...]\n");
    return 2;
  }
  std::vector<front::HistoryDump> dumps;
  for (int i = 1; i < argc; ++i) {
    auto d = front::read_history_dump(argv[i]);
    if (!d) {
      std::fprintf(stderr, "gdur_checkhist: cannot parse %s\n", argv[i]);
      return 2;
    }
    if (!dumps.empty() && !dumps.front().header.compatible(d->header)) {
      std::fprintf(stderr,
                   "gdur_checkhist: %s is from a different run "
                   "(protocol/keyspace/membership mismatch)\n",
                   argv[i]);
      return 2;
    }
    dumps.push_back(std::move(*d));
  }

  const auto& hdr = dumps.front().header;
  checker::History hist;
  hist.attach_partitioner(store::Partitioner(
      static_cast<int>(hdr.sites), static_cast<int>(hdr.replication),
      hdr.objects, static_cast<int>(hdr.partitions_per_site)));
  std::size_t txns = 0, installs = 0;
  for (const auto& d : dumps) {
    for (const auto& o : d.txns) {
      hist.record_txn(o.txn, o.committed, o.response_time);
      ++txns;
    }
    for (const auto& e : d.installs) {
      hist.record_install(e);
      ++installs;
    }
  }

  const auto r = hist.check_criterion(hdr.criterion);
  std::printf(
      "gdur_checkhist: %s/%s, %d sites, %zu dumps, %zu txns "
      "(%zu committed), %zu installs: %s\n",
      hdr.protocol.c_str(), hdr.criterion.c_str(),
      static_cast<int>(hdr.sites), dumps.size(), txns,
      hist.committed_count(), installs,
      r.ok ? "clean" : r.detail.c_str());
  return r.ok ? 0 : 1;
}
